//! The event loop: arrivals, rounds, restarts, completions.
//!
//! The loop is event-indexed (see `DESIGN.md`, "Engine event core"): a
//! lazy-deletion min-heap predicts the next job event, `BTreeSet`
//! membership indexes replace full job-table scans, and jobs advance
//! lazily — only `Running` members of the active set, and only when time
//! actually moves. All of it is bitwise-invisible: every floating-point
//! accumulation happens with the same operands in the same (ascending
//! job-index) order as the pre-index reference loop preserved in
//! [`crate::reference`], which the `engine_equivalence` suite holds this
//! file to byte-for-byte.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use arena_cluster::{Allocation, Cluster, GpuTypeId};
use arena_estimator::Interner;
use arena_obs::{Decision, JobEventKind, Obs, StopCause, TraceReport};
use arena_sched::PlanService;
use arena_sched::{Action, JobView, PlacementView, PlanMode, Policy, SchedEvent, SchedView};
use arena_trace::{FaultEvent, FaultKind, JobSpec};

use crate::heap::EventHeap;
use crate::metrics::{aggregate, FaultLog, JobRecord, Metrics};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduling-round interval, seconds (§7: 5 minutes).
    pub round_interval_s: f64,
    /// Fixed (re)start overhead per placement, seconds (process launch,
    /// NCCL bootstrap).
    pub restart_overhead_s: f64,
    /// Shared-storage bandwidth for checkpoint save + restore, bytes/s;
    /// restarting a job additionally costs `2 x checkpoint / bandwidth`,
    /// so shuffling big models is proportionally more expensive.
    pub checkpoint_bw_bps: f64,
    /// Periodic checkpoint interval while running, seconds. A node
    /// failure rolls the victim's progress back to its last checkpoint,
    /// so shorter intervals lose less work (but real systems pay more
    /// checkpoint stalls; that trade-off is not modelled here).
    pub checkpoint_interval_s: f64,
    /// Hard stop; jobs still queued/running are recorded as unfinished.
    pub horizon_s: f64,
}

impl SimConfig {
    /// The defaults used throughout the evaluation.
    #[must_use]
    pub fn new(horizon_s: f64) -> Self {
        SimConfig {
            round_interval_s: 300.0,
            restart_overhead_s: 30.0,
            checkpoint_bw_bps: 2.0e9,
            checkpoint_interval_s: 600.0,
            horizon_s,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The policy's display name.
    pub policy: String,
    /// Final per-job records.
    pub records: Vec<JobRecord>,
    /// `(time, normalised cluster throughput)` at every round.
    pub timeline: Vec<(f64, f64)>,
    /// `(time, raw cluster throughput in samples/s)` at every round.
    pub raw_timeline: Vec<(f64, f64)>,
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// Everything the observability layer recorded. Empty unless the run
    /// went through [`simulate_traced`] / [`simulate_with_faults_traced`]
    /// with an enabled [`Obs`].
    pub trace: TraceReport,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum JState {
    Queued,
    /// Restarting/exploring until the given time; holds GPUs, no progress.
    Starting(f64),
    Running,
    Finished,
    Dropped,
}

pub(crate) struct SJob {
    pub(crate) spec: Arc<JobSpec>,
    /// `spec.model.name()` interned once at arrival — the plan-database
    /// key component, so placements never hash a fresh `String`.
    pub(crate) model_key: u32,
    pub(crate) state: JState,
    /// Epoch for this job's event-heap entries: bumped on every
    /// transition that invalidates a predicted event, so stale heap
    /// entries identify themselves by generation mismatch.
    pub(crate) generation: u64,
    /// Simulation time this job's progress was last advanced to. Lags
    /// the clock only across zero-width event bursts, where an advance
    /// would be an exact no-op.
    pub(crate) last_update_s: f64,
    pub(crate) remaining: f64,
    pub(crate) alloc: Option<Allocation>,
    /// Home executor shard, fixed at arrival (always 0 in the serial
    /// engine). Carried on the job rather than in a side table so that
    /// reclaiming a terminal job's slot frees *all* of its per-job
    /// state.
    pub(crate) home: usize,
    pub(crate) pool: usize,
    pub(crate) gpus: usize,
    pub(crate) opportunistic: bool,
    pub(crate) sps: f64,
    pub(crate) iter_time: f64,
    pub(crate) start_s: Option<f64>,
    pub(crate) finish_s: Option<f64>,
    pub(crate) restarts: u32,
    pub(crate) profiled: bool,
    /// Wall-clock spent running since the last checkpoint; on a node
    /// failure this much progress is lost.
    pub(crate) since_ckpt_s: f64,
    /// Set when a failure evicts the job; cleared (and recorded) when it
    /// runs again.
    pub(crate) recovering_since: Option<f64>,
    /// Start of the current `Running` segment; flushed into the totals
    /// when the job stops, finishes, or the run ends.
    pub(crate) run_since: Option<f64>,
    /// Start of the current GPU-holding segment (`Starting` or
    /// `Running`); flushed like `run_since`.
    pub(crate) alloc_since: Option<f64>,
    /// Total wall-clock spent running.
    pub(crate) run_s: f64,
    /// GPU-seconds spent making progress (`Running` only).
    pub(crate) productive_gpu_s: f64,
    /// GPU-seconds held, productive or not (`Starting` + `Running`).
    pub(crate) allocated_gpu_s: f64,
}

impl SJob {
    pub(crate) fn active(&self) -> bool {
        matches!(self.state, JState::Starting(_) | JState::Running)
    }

    /// Closes the current `Running` segment at `t`. The accumulation —
    /// one `(t - since) * gpus` product added per segment, in
    /// chronological order — mirrors [`arena_obs::Timeline::accounts`]
    /// exactly, so the two stay bitwise equal.
    pub(crate) fn flush_run(&mut self, t: f64) {
        if let Some(since) = self.run_since.take() {
            let dt = t - since;
            self.run_s += dt;
            self.productive_gpu_s += dt * self.gpus as f64;
        }
    }

    /// Closes the current GPU-holding segment at `t` (see
    /// [`SJob::flush_run`]).
    pub(crate) fn flush_alloc(&mut self, t: f64) {
        if let Some(since) = self.alloc_since.take() {
            self.allocated_gpu_s += (t - since) * self.gpus as f64;
        }
    }
}

/// Membership indexes over the job table plus the pending-event heap.
///
/// Invariants: `queued` holds exactly the `Queued` job indices and
/// `active` exactly the `Starting`/`Running` ones — both iterate in
/// ascending index order, which is submission order, the same order the
/// reference loop's full-table scans visit jobs in. Every active job has
/// exactly one *fresh* heap entry (generation matches) carrying its next
/// predicted event; everything else in the heap is stale and discarded
/// lazily.
#[derive(Default)]
pub(crate) struct EventIndex {
    pub(crate) queued: BTreeSet<usize>,
    pub(crate) active: BTreeSet<usize>,
    pub(crate) heap: EventHeap,
}

impl EventIndex {
    /// Queued or active -> holding a fresh grant (`Starting`): schedules
    /// the start deadline and invalidates any previous prediction.
    pub(crate) fn place(&mut self, j: &mut SJob, idx: usize, ready_at: f64) {
        self.queued.remove(&idx);
        self.active.insert(idx);
        j.generation += 1;
        self.heap.push(ready_at, j.generation, idx);
    }

    /// Active (or already queued, after a capacity race) -> `Queued`.
    pub(crate) fn requeue(&mut self, j: &mut SJob, idx: usize) {
        self.active.remove(&idx);
        self.queued.insert(idx);
        j.generation += 1;
    }

    /// Any state -> terminal (`Finished` / `Dropped`).
    pub(crate) fn retire(&mut self, j: &mut SJob, idx: usize) {
        self.queued.remove(&idx);
        self.active.remove(&idx);
        j.generation += 1;
    }
}

pub(crate) const EPS: f64 = 1e-6;

/// Runs `policy` over `jobs` on `cluster` and returns metrics.
///
/// The trace must be sorted by submission time (trace generators produce
/// this order).
///
/// # Examples
///
/// ```
/// use arena_cluster::presets;
/// use arena_perf::CostParams;
/// use arena_sched::{FcfsPolicy, PlanService};
/// use arena_sim::{simulate, SimConfig};
/// use arena_trace::{generate, TraceConfig, TraceKind};
///
/// let cluster = presets::physical_testbed();
/// let service = PlanService::new(&cluster, CostParams::default(), 1);
/// let trace = TraceConfig::new(TraceKind::PaiLow, 1800.0, 64, vec![48.0, 24.0]);
/// let jobs = generate(&trace);
/// let result = simulate(
///     &cluster,
///     &jobs,
///     &mut FcfsPolicy::new(),
///     &service,
///     &SimConfig::new(24.0 * 3600.0),
/// );
/// assert_eq!(
///     result.metrics.finished + result.metrics.dropped + result.metrics.unfinished,
///     jobs.len()
/// );
/// ```
///
/// # Panics
///
/// Panics if the trace is not sorted by `submit_s` or the cluster books
/// are corrupted by inconsistent policy actions (a bug, not an input
/// error).
#[must_use]
pub fn simulate(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
) -> SimResult {
    simulate_with_faults(cluster, jobs, policy, service, cfg, &[])
}

/// Like [`simulate`], but records decision provenance, spans, counters and
/// gauges into `obs` and returns the resulting [`TraceReport`] in
/// [`SimResult::trace`]. With `Obs::disabled()` this is exactly
/// [`simulate`].
#[must_use]
pub fn simulate_traced(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    obs: &Obs,
) -> SimResult {
    simulate_with_faults_traced(cluster, jobs, policy, service, cfg, &[], obs)
}

/// Like [`simulate`], but injects a node-failure schedule (see
/// [`arena_trace::generate_faults`]).
///
/// A `Failure` event marks the node failed in the cluster books, evicts
/// every job whose allocation touches it, rolls each victim's progress
/// back to its last checkpoint (`checkpoint_interval_s`), requeues the
/// victims and notifies the policy with [`SchedEvent::NodeFailure`]; a
/// `Repair` restores the node's capacity and fires
/// [`SchedEvent::NodeRepair`]. Passing an empty schedule is exactly
/// [`simulate`]: the zero-fault path is byte-for-byte identical.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate`], if `faults` is not
/// sorted by time, or if a fault event names a node the cluster does not
/// have.
#[must_use]
pub fn simulate_with_faults(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    faults: &[FaultEvent],
) -> SimResult {
    simulate_with_faults_traced(
        cluster,
        jobs,
        policy,
        service,
        cfg,
        faults,
        &Obs::disabled(),
    )
}

/// Like [`simulate_with_faults`], but records into `obs` (see
/// [`simulate_traced`]). Engine-side provenance — node-failure evictions,
/// capacity races, infeasible placements — is recorded as
/// [`arena_obs::DecisionKind::Requeue`] decisions so it never mixes with
/// the policies' own place/evict/drop records.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn simulate_with_faults_traced(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    faults: &[FaultEvent],
    obs: &Obs,
) -> SimResult {
    assert!(
        jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s),
        "trace must be sorted by submission time"
    );
    assert!(
        faults.windows(2).all(|w| w[0].time_s <= w[1].time_s),
        "fault schedule must be sorted by time"
    );
    let cluster_gpu_capacity = cluster.total_gpus();
    if obs.is_enabled() {
        let nodes: Vec<(usize, usize, usize)> = cluster
            .pool_ids()
            .flat_map(|pool| {
                let cap = cluster.spec(pool).gpus_per_node;
                (0..cluster.num_nodes(pool)).map(move |node| (pool.0, node, cap))
            })
            .collect();
        obs.timeline_nodes(&nodes);
    }
    let mut cluster = cluster.clone();
    let mut sjobs: Vec<SJob> = Vec::with_capacity(jobs.len());
    // First index in the job table carrying each job id — the same job
    // a linear `find` by id would resolve to.
    let mut id_of: HashMap<u64, usize> = HashMap::with_capacity(jobs.len());
    let mut index = EventIndex::default();
    // Indices collected before walks that mutate set membership.
    let mut due: Vec<usize> = Vec::new();
    // Plan databases are cached per configuration: the first job placed
    // on a (model, batch, gpus, pool) combination pays the exploration or
    // tuning wall-clock; later placements reuse the stored plan. Model
    // names are interned so the key is four integers.
    let interner = Interner::new();
    let mut acquired: HashSet<(u32, usize, usize, usize)> = HashSet::new();
    let mut t = 0.0_f64;
    let mut arrival_idx = 0;
    let mut fault_idx = 0;
    let mut flog = FaultLog::default();
    let mut next_round = cfg.round_interval_s;
    let mut timeline: Vec<(f64, f64)> = Vec::new();
    let mut raw_timeline: Vec<(f64, f64)> = Vec::new();
    let mut decisions: Vec<f64> = Vec::new();

    loop {
        // Bound heap growth: stale entries below the top can't affect
        // `next_fresh`, so this is purely a memory cap.
        if index.heap.len() > 1024 && index.heap.len() > 8 * (index.active.len() + 1) {
            let EventIndex { heap, .. } = &mut index;
            heap.compact(|job, generation| sjobs[job].generation == generation);
        }

        // Next event candidates. The heap replaces the reference loop's
        // full-table scan; its fresh minimum is bitwise the same value
        // that scan folds to (see DESIGN.md, "Engine event core").
        let next_arrival = jobs.get(arrival_idx).map(|j| j.submit_s);
        let next_fault = faults.get(fault_idx).map_or(f64::INFINITY, |f| f.time_s);
        let next_job_event = index
            .heap
            .next_fresh(|job, generation| sjobs[job].generation == generation);
        let te = [
            next_arrival.unwrap_or(f64::INFINITY),
            next_fault,
            next_round,
            next_job_event,
            cfg.horizon_s,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);

        if !te.is_finite() {
            break;
        }

        // Advance running jobs to `te`. Lazy on two axes, both exact:
        // only Running members of the active set step (everything else
        // was a no-op in the reference loop), and zero-width bursts skip
        // the walk entirely (`x + 0.0 == x`, `x % m == x` for
        // `0 <= x < m`). Each advanced job's completion prediction is
        // refreshed here — `te + remaining * iter_time` is exactly the
        // value the reference scan would recompute next iteration.
        let dt = (te - t).max(0.0);
        if dt > 0.0 {
            let EventIndex { active, heap, .. } = &mut index;
            for &i in active.iter() {
                let j = &mut sjobs[i];
                if j.state == JState::Running && j.iter_time > 0.0 {
                    j.remaining = (j.remaining - dt / j.iter_time).max(0.0);
                    flog.samples_processed += dt * j.sps;
                    j.since_ckpt_s += dt;
                    if cfg.checkpoint_interval_s > 0.0 && cfg.checkpoint_interval_s.is_finite() {
                        j.since_ckpt_s %= cfg.checkpoint_interval_s;
                    }
                    debug_assert!(j.last_update_s <= te, "job advanced backwards");
                    j.last_update_s = te;
                    j.generation += 1;
                    heap.push(te + j.remaining * j.iter_time, j.generation, i);
                }
            }
        }
        t = te;
        if t >= cfg.horizon_s - EPS {
            break;
        }

        // 1. Starting -> Running transitions due now. The heap wakes the
        // loop at the earliest deadline; the EPS window means later
        // deadlines can fire in the same burst, so the walk re-checks
        // every active job rather than popping the heap.
        {
            let EventIndex { active, heap, .. } = &mut index;
            for &i in active.iter() {
                let j = &mut sjobs[i];
                if let JState::Starting(r) = j.state {
                    if r <= t + EPS {
                        j.state = JState::Running;
                        j.start_s.get_or_insert(t);
                        j.since_ckpt_s = 0.0;
                        // Split the allocation segment at the run boundary so
                        // the accumulation order matches the timeline's
                        // Placed/Running interval split bitwise.
                        j.flush_alloc(t);
                        j.alloc_since = Some(t);
                        j.run_since = Some(t);
                        j.last_update_s = t;
                        if let Some(since) = j.recovering_since.take() {
                            flog.recovery_times_s.push(t - since);
                        }
                        obs.job_event(t, j.spec.id, JobEventKind::RunStart);
                        // Retire the start deadline, predict completion.
                        j.generation += 1;
                        heap.push(t + j.remaining * j.iter_time, j.generation, i);
                    }
                }
            }
        }

        // 2. Completions due now (free resources before anything else).
        let mut event: Option<SchedEvent> = None;
        due.clear();
        due.extend(index.active.iter().copied().filter(|&i| {
            let j = &sjobs[i];
            j.state == JState::Running && j.remaining <= EPS
        }));
        for &i in &due {
            let j = &mut sjobs[i];
            j.state = JState::Finished;
            j.finish_s = Some(t);
            j.flush_run(t);
            j.flush_alloc(t);
            if let Some(alloc) = j.alloc.take() {
                cluster.release(&alloc).expect("release finished job");
                obs.alloc_event(t, j.spec.id, alloc.pool.0, &alloc.node_gpus, false);
            }
            obs.job_event(t, j.spec.id, JobEventKind::Finish);
            event = Some(SchedEvent::Departure(j.spec.id));
            index.retire(&mut sjobs[i], i);
        }

        // 2b. Fault events due now. Each gets its own scheduling pass so
        // the policy can react to every transition individually.
        while fault_idx < faults.len() && faults[fault_idx].time_s <= t + EPS {
            let fault = &faults[fault_idx];
            fault_idx += 1;
            let pool = GpuTypeId(fault.pool);
            let ev = match fault.kind {
                FaultKind::Failure => {
                    cluster
                        .fail_node(pool, fault.node)
                        .expect("fault schedule names a node the cluster has");
                    obs.context(t, "engine", "node-failure");
                    obs.incr("sim.fault.failure", 1);
                    due.clear();
                    due.extend(index.active.iter().copied().filter(|&i| {
                        sjobs[i]
                            .alloc
                            .as_ref()
                            .is_some_and(|a| a.uses_node(pool, fault.node))
                    }));
                    for &i in &due {
                        let j = &mut sjobs[i];
                        let alloc = j.alloc.take().expect("active job holds an allocation");
                        cluster.release(&alloc).expect("release crashed job");
                        j.flush_run(t);
                        j.flush_alloc(t);
                        obs.alloc_event(t, j.spec.id, alloc.pool.0, &alloc.node_gpus, false);
                        // A running victim loses everything since its
                        // last checkpoint; a starting one had nothing to
                        // lose (its checkpoint was saved at placement).
                        let mut rollback = 0.0;
                        if j.state == JState::Running && j.iter_time > 0.0 {
                            let lost_iters = (j.since_ckpt_s / j.iter_time)
                                .min(j.spec.iterations as f64 - j.remaining);
                            j.remaining += lost_iters;
                            flog.samples_lost += lost_iters * j.iter_time * j.sps;
                            rollback = lost_iters;
                        }
                        obs.job_event(
                            t,
                            j.spec.id,
                            JobEventKind::Stop {
                                cause: StopCause::NodeFailure,
                                lost_iters: rollback,
                            },
                        );
                        j.state = JState::Queued;
                        j.restarts += 1;
                        j.opportunistic = false;
                        j.since_ckpt_s = 0.0;
                        // Keep the earliest failure time if the job is
                        // knocked over again while restarting.
                        j.recovering_since.get_or_insert(t);
                        flog.failure_evictions += 1;
                        obs.decision(
                            Decision::requeue(j.spec.id)
                                .on_shard(j.spec.requested_pool as u32)
                                .why("node-failure-evict"),
                        );
                        index.requeue(&mut sjobs[i], i);
                    }
                    SchedEvent::NodeFailure {
                        pool,
                        node: fault.node,
                    }
                }
                FaultKind::Repair => {
                    cluster
                        .repair_node(pool, fault.node)
                        .expect("fault schedule names a node the cluster has");
                    obs.incr("sim.fault.repair", 1);
                    SchedEvent::NodeRepair {
                        pool,
                        node: fault.node,
                    }
                }
            };
            dispatch(
                ev,
                &mut sjobs,
                &mut index,
                &id_of,
                &mut cluster,
                service,
                policy,
                cfg,
                t,
                &mut acquired,
                &mut decisions,
                obs,
            );
        }

        // 3. Arrivals due now.
        while arrival_idx < jobs.len() && jobs[arrival_idx].submit_s <= t + EPS {
            let spec = Arc::new(jobs[arrival_idx].clone());
            arrival_idx += 1;
            let iters = spec.iterations as f64;
            let id = spec.id;
            let model_key = interner.intern(&spec.model.name());
            let idx = sjobs.len();
            sjobs.push(SJob {
                spec,
                model_key,
                state: JState::Queued,
                generation: 0,
                last_update_s: t,
                remaining: iters,
                alloc: None,
                home: 0,
                pool: 0,
                gpus: 0,
                opportunistic: false,
                sps: 0.0,
                iter_time: 0.0,
                start_s: None,
                finish_s: None,
                restarts: 0,
                profiled: false,
                since_ckpt_s: 0.0,
                recovering_since: None,
                run_since: None,
                alloc_since: None,
                run_s: 0.0,
                productive_gpu_s: 0.0,
                allocated_gpu_s: 0.0,
            });
            id_of.entry(id).or_insert(idx);
            index.queued.insert(idx);
            obs.job_event(t, id, JobEventKind::Submit);
            event = Some(SchedEvent::Arrival(id));
        }

        // 4. Round tick.
        if next_round <= t + EPS {
            next_round += cfg.round_interval_s;
            event.get_or_insert(SchedEvent::Round);
        }

        // 5. Let the policy react.
        if let Some(ev) = event {
            dispatch(
                ev,
                &mut sjobs,
                &mut index,
                &id_of,
                &mut cluster,
                service,
                policy,
                cfg,
                t,
                &mut acquired,
                &mut decisions,
                obs,
            );
        }

        // 6. Sample the throughput timeline at round boundaries.
        if matches!(event, Some(SchedEvent::Round)) {
            timeline.push((t, normalized_throughput(&sjobs, &index.active, service)));
            raw_timeline.push((t, raw_throughput(&sjobs, &index.active)));
        }

        // Termination: no arrivals left, nothing queued or active.
        if arrival_idx >= jobs.len() && index.queued.is_empty() && index.active.is_empty() {
            break;
        }
    }

    // Conformance: a finished or dropped job must not hold GPUs, and the
    // membership indexes must agree with the job table.
    for (i, j) in sjobs.iter().enumerate() {
        if matches!(j.state, JState::Finished | JState::Dropped) {
            assert!(j.alloc.is_none(), "terminal job {} holds GPUs", j.spec.id);
        }
        debug_assert_eq!(
            index.queued.contains(&i),
            j.state == JState::Queued,
            "queued index out of sync for job {}",
            j.spec.id
        );
        debug_assert_eq!(
            index.active.contains(&i),
            j.active(),
            "active index out of sync for job {}",
            j.spec.id
        );
    }
    flog.elapsed_s = t.min(cfg.horizon_s);
    flog.gpu_capacity_s = cluster_gpu_capacity as f64 * flog.elapsed_s;
    // Close open accounting segments at the end of the run — the same
    // cutoff the timeline applies to still-open intervals.
    let t_end = flog.elapsed_s;
    for j in &mut sjobs {
        j.flush_run(t_end);
        j.flush_alloc(t_end);
    }
    obs.timeline_close(t_end);

    let records: Vec<JobRecord> = sjobs
        .iter()
        .map(|j| JobRecord {
            id: j.spec.id,
            name: j.spec.name.clone(),
            submit_s: j.spec.submit_s,
            start_s: j.start_s,
            finish_s: j.finish_s,
            dropped: j.state == JState::Dropped,
            restarts: j.restarts,
            run_s: j.run_s,
            productive_gpu_s: j.productive_gpu_s,
            allocated_gpu_s: j.allocated_gpu_s,
            deadline_met: j
                .spec
                .deadline_s
                .map(|d| j.finish_s.is_some_and(|f| f <= d)),
        })
        .collect();
    let metrics = aggregate(&records, &timeline, &raw_timeline, &decisions, &flog);
    if obs.is_enabled() {
        let est = service.estimator_stats();
        obs.incr("estimator.estimate.hits", est.estimate_hits);
        obs.incr("estimator.estimate.misses", est.estimate_misses);
        obs.incr("estimator.profile.hits", est.profile_hits);
        obs.incr("estimator.profile.misses", est.profile_misses);
        obs.incr("estimator.table.hits", est.table_hits);
        obs.incr("estimator.table.misses", est.table_misses);
    }
    SimResult {
        policy: policy.name().to_string(),
        records,
        timeline,
        raw_timeline,
        metrics,
        trace: obs.report(),
    }
}

/// Builds the policy's view, asks it for actions, and executes them.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    ev: SchedEvent,
    sjobs: &mut [SJob],
    index: &mut EventIndex,
    id_of: &HashMap<u64, usize>,
    cluster: &mut Cluster,
    service: &PlanService,
    policy: &mut dyn Policy,
    cfg: &SimConfig,
    t: f64,
    acquired: &mut HashSet<(u32, usize, usize, usize)>,
    decisions: &mut Vec<f64>,
    obs: &Obs,
) {
    let actions = {
        debug_assert!(
            index
                .queued
                .iter()
                .all(|&i| sjobs[i].state == JState::Queued),
            "queued index holds a non-queued job"
        );
        debug_assert!(
            index.active.iter().all(|&i| sjobs[i].active()),
            "active index holds an inactive job"
        );
        let queued: Vec<JobView> = index.queued.iter().map(|&i| job_view(&sjobs[i])).collect();
        let running: Vec<JobView> = index.active.iter().map(|&i| job_view(&sjobs[i])).collect();
        let pools = cluster.pool_stats();
        if obs.is_enabled() {
            obs.context(t, policy.name(), ev.label());
            obs.incr(&format!("sim.event.{}", ev.label()), 1);
            obs.gauge("sim.queue_depth", t, queued.len() as f64);
            obs.gauge("sim.running_jobs", t, running.len() as f64);
        }
        let view = SchedView {
            now_s: t,
            queued: &queued,
            running: &running,
            pools: &pools,
            service,
            obs: obs.clone(),
        };
        let started = std::time::Instant::now();
        let actions = {
            let _span = obs.span("sim.schedule");
            policy.schedule(ev, &view)
        };
        decisions.push(started.elapsed().as_secs_f64());
        obs.observe("sim.actions_per_pass", actions.len() as f64);
        actions
    };
    execute(
        &actions, sjobs, index, id_of, cluster, service, policy, cfg, t, acquired, obs,
    );
}

pub(crate) fn job_view(j: &SJob) -> JobView {
    JobView {
        spec: Arc::clone(&j.spec),
        remaining_iters: j.remaining,
        #[allow(clippy::unnecessary_lazy_evaluations)]
        placement: j.active().then(|| PlacementView {
            pool: arena_cluster::GpuTypeId(j.pool),
            gpus: j.gpus,
            throughput_sps: j.sps,
            opportunistic: j.opportunistic,
        }),
    }
}

/// Cluster samples/s: the running subset of the active set, summed in
/// ascending job-index order — the same operands and order as a filtered
/// scan of the full table.
fn raw_throughput(sjobs: &[SJob], active: &BTreeSet<usize>) -> f64 {
    active
        .iter()
        .map(|&i| &sjobs[i])
        .filter(|j| j.state == JState::Running)
        .map(|j| j.sps)
        .sum()
}

/// Like [`raw_throughput`], each job normalised by its ideal rate.
fn normalized_throughput(sjobs: &[SJob], active: &BTreeSet<usize>, service: &PlanService) -> f64 {
    active
        .iter()
        .map(|&i| &sjobs[i])
        .filter(|j| j.state == JState::Running)
        .map(|j| j.sps / service.ideal_sps(&j.spec))
        .sum()
}

#[allow(clippy::too_many_arguments)]
fn execute(
    actions: &[Action],
    sjobs: &mut [SJob],
    index: &mut EventIndex,
    id_of: &HashMap<u64, usize>,
    cluster: &mut Cluster,
    service: &PlanService,
    policy: &dyn Policy,
    cfg: &SimConfig,
    t: f64,
    acquired: &mut HashSet<(u32, usize, usize, usize)>,
    obs: &Obs,
) {
    for action in actions {
        match *action {
            Action::Drop { job } => {
                let Some(&idx) = id_of.get(&job) else {
                    continue;
                };
                let j = &mut sjobs[idx];
                if matches!(j.state, JState::Finished | JState::Dropped) {
                    continue;
                }
                j.flush_run(t);
                j.flush_alloc(t);
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release dropped job");
                    obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                }
                j.state = JState::Dropped;
                obs.job_event(t, job, JobEventKind::Drop);
                index.retire(&mut sjobs[idx], idx);
            }
            Action::Evict { job } => {
                let Some(&idx) = id_of.get(&job) else {
                    continue;
                };
                let j = &mut sjobs[idx];
                if j.active() {
                    j.flush_run(t);
                    j.flush_alloc(t);
                    if let Some(alloc) = j.alloc.take() {
                        cluster.release(&alloc).expect("release evicted job");
                        obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                    }
                    j.state = JState::Queued;
                    j.restarts += 1;
                    j.opportunistic = false;
                    obs.job_event(
                        t,
                        job,
                        JobEventKind::Stop {
                            cause: StopCause::Preemption,
                            lost_iters: 0.0,
                        },
                    );
                    index.requeue(&mut sjobs[idx], idx);
                }
            }
            Action::Place {
                job,
                pool,
                gpus,
                opportunistic,
            } => {
                let Some(&idx) = id_of.get(&job) else {
                    continue;
                };
                let j = &mut sjobs[idx];
                if matches!(j.state, JState::Finished | JState::Dropped) {
                    continue;
                }
                // No-op placement: already running exactly like this.
                if j.active() && j.pool == pool.0 && j.gpus == gpus {
                    continue;
                }
                let run = match policy.plan_mode() {
                    PlanMode::Adaptive => service.adaptive_run(&j.spec.model, gpus, pool),
                    PlanMode::Cell => service.arena_run(&j.spec.model, gpus, pool),
                };
                let Some(run) = run else {
                    // Infeasible placement: ignored (the job stays where
                    // it was — queued or running).
                    obs.incr("sim.place.infeasible", 1);
                    obs.decision(
                        Decision::requeue(job)
                            .on_shard(j.spec.requested_pool as u32)
                            .why("infeasible-placement"),
                    );
                    continue;
                };
                let was_active = j.active();
                let prev_grant = was_active.then_some((j.pool, j.gpus));
                j.flush_run(t);
                j.flush_alloc(t);
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release re-placed job");
                    obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                }
                match cluster.allocate(pool, gpus) {
                    Ok(alloc) => {
                        if was_active {
                            j.restarts += 1;
                        }
                        obs.alloc_event(t, job, pool.0, &alloc.node_gpus, true);
                        // Profiling overlaps queueing (§8.2: one spare GPU
                        // per type suffices); the exploration/tuning wall
                        // is paid once per configuration (plan databases
                        // are cached) on top of the restart overhead.
                        let key = (j.model_key, j.spec.model.global_batch, gpus, pool.0);
                        let first = acquired.insert(key);
                        // Checkpoint save + optimizer-state restore scale
                        // with the model's training state (16 B/param).
                        let state_bytes = 8.0 * service.graph(&j.spec.model).total_param_bytes();
                        let ckpt = 2.0 * state_bytes / cfg.checkpoint_bw_bps;
                        let delay = cfg.restart_overhead_s
                            + ckpt
                            + if first { run.acquire_wall_s } else { 0.0 };
                        j.profiled = true;
                        j.alloc = Some(alloc);
                        j.pool = pool.0;
                        j.gpus = gpus;
                        j.opportunistic = opportunistic;
                        j.sps = run.throughput_sps;
                        j.iter_time = run.iter_time_s;
                        j.state = JState::Starting(t + delay);
                        j.alloc_since = Some(t);
                        obs.incr("sim.place.ok", 1);
                        obs.job_event(
                            t,
                            job,
                            JobEventKind::Place {
                                pool: pool.0,
                                gpus,
                                prev: prev_grant,
                                opportunistic,
                            },
                        );
                        index.place(&mut sjobs[idx], idx, t + delay);
                    }
                    Err(_) => {
                        // Capacity race: job returns to the queue.
                        if was_active {
                            j.restarts += 1;
                            obs.job_event(
                                t,
                                job,
                                JobEventKind::Stop {
                                    cause: StopCause::CapacityRace,
                                    lost_iters: 0.0,
                                },
                            );
                        }
                        j.state = JState::Queued;
                        obs.incr("sim.place.capacity_race", 1);
                        obs.decision(
                            Decision::requeue(job)
                                .on_shard(j.spec.requested_pool as u32)
                                .why("capacity-race"),
                        );
                        index.requeue(&mut sjobs[idx], idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::presets;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_perf::CostParams;
    use arena_sched::{ArenaPolicy, FcfsPolicy, GavelPolicy};

    fn tiny_trace() -> Vec<JobSpec> {
        let mk = |id: u64, submit: f64, size: f64, gpus: usize, iters: u64| JobSpec {
            id,
            name: format!("j{id}"),
            submit_s: submit,
            model: ModelConfig::new(ModelFamily::Bert, size, 256),
            iterations: iters,
            requested_gpus: gpus,
            requested_pool: 0,
            deadline_s: None,
        };
        vec![
            mk(0, 0.0, 0.76, 4, 300),
            mk(1, 100.0, 1.3, 8, 200),
            mk(2, 200.0, 0.76, 2, 400),
            mk(3, 2000.0, 1.3, 4, 200),
        ]
    }

    fn run(policy: &mut dyn Policy) -> SimResult {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        simulate(
            &cluster,
            &jobs,
            policy,
            &service,
            &SimConfig::new(48.0 * 3600.0),
        )
    }

    #[test]
    fn fcfs_finishes_everything() {
        let r = run(&mut FcfsPolicy::new());
        assert_eq!(r.metrics.finished, 4, "records: {:#?}", r.records);
        assert_eq!(r.metrics.dropped, 0);
        assert_eq!(r.metrics.unfinished, 0);
        for rec in &r.records {
            let jct = rec.jct_s().unwrap();
            assert!(jct > 0.0);
            let q = rec.queue_s().unwrap();
            assert!(q >= 0.0 && q <= jct);
        }
    }

    #[test]
    fn arena_finishes_everything_and_beats_or_matches_fcfs_jct() {
        let fcfs = run(&mut FcfsPolicy::new());
        let arena = run(&mut ArenaPolicy::new());
        assert_eq!(arena.metrics.finished, 4);
        // On this under-loaded toy trace both finish everything; Arena
        // must not be wildly worse despite its profiling delays.
        assert!(
            arena.metrics.avg_jct_s < 2.5 * fcfs.metrics.avg_jct_s,
            "arena {} vs fcfs {}",
            arena.metrics.avg_jct_s,
            fcfs.metrics.avg_jct_s
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run(&mut GavelPolicy::new());
        let b = run(&mut GavelPolicy::new());
        assert_eq!(a.metrics.avg_jct_s, b.metrics.avg_jct_s);
        assert_eq!(a.metrics.finished, b.metrics.finished);
        assert_eq!(a.timeline.len(), b.timeline.len());
    }

    #[test]
    fn timeline_is_sampled_and_bounded() {
        let r = run(&mut FcfsPolicy::new());
        assert!(!r.timeline.is_empty());
        for &(time, v) in &r.timeline {
            assert!(time >= 0.0);
            // Normalised throughput of 4 jobs can never exceed ~4 plus
            // noise slack.
            assert!((0.0..=5.0).contains(&v), "throughput {v} at {time}");
        }
    }

    #[test]
    fn horizon_cuts_off_unfinished_jobs() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        let r = simulate(
            &cluster,
            &jobs,
            &mut FcfsPolicy::new(),
            &service,
            &SimConfig::new(2500.0),
        );
        assert!(r.metrics.finished < 4);
        assert_eq!(
            r.metrics.finished + r.metrics.unfinished + r.metrics.dropped,
            4
        );
    }

    #[test]
    fn slower_checkpoints_stretch_jcts() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        let run = |bw: f64| {
            let mut cfg = SimConfig::new(48.0 * 3600.0);
            cfg.checkpoint_bw_bps = bw;
            simulate(&cluster, &jobs, &mut FcfsPolicy::new(), &service, &cfg)
        };
        let fast = run(20.0e9);
        let slow = run(0.1e9);
        assert!(
            slow.metrics.avg_jct_s > fast.metrics.avg_jct_s,
            "slow {} <= fast {}",
            slow.metrics.avg_jct_s,
            fast.metrics.avg_jct_s
        );
    }

    /// Fails `nodes` nodes of pool 0 at `fail_t`, repairs them at
    /// `repair_t`.
    fn pool0_outage(fail_t: f64, repair_t: f64, nodes: usize) -> Vec<FaultEvent> {
        let mut evs: Vec<FaultEvent> = (0..nodes)
            .map(|n| FaultEvent {
                time_s: fail_t,
                pool: 0,
                node: n,
                kind: FaultKind::Failure,
            })
            .collect();
        evs.extend((0..nodes).map(|n| FaultEvent {
            time_s: repair_t,
            pool: 0,
            node: n,
            kind: FaultKind::Repair,
        }));
        evs
    }

    #[test]
    fn empty_fault_schedule_matches_simulate() {
        let a = run(&mut FcfsPolicy::new());
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        let b = simulate_with_faults(
            &cluster,
            &jobs,
            &mut FcfsPolicy::new(),
            &service,
            &SimConfig::new(48.0 * 3600.0),
            &[],
        );
        assert_eq!(a.metrics.avg_jct_s, b.metrics.avg_jct_s);
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(b.metrics.failure_evictions, 0);
        assert_eq!(b.metrics.work_lost_frac, 0.0);
        assert_eq!(b.metrics.mean_recovery_s, 0.0);
        assert!(b.metrics.goodput_sps > 0.0);
    }

    #[test]
    fn node_failures_evict_roll_back_and_recover() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        let mut cfg = SimConfig::new(48.0 * 3600.0);
        // No checkpoints: a crash loses everything since the run began.
        cfg.checkpoint_interval_s = f64::INFINITY;
        let faults = pool0_outage(1000.0, 5000.0, 16);
        let r = simulate_with_faults(
            &cluster,
            &jobs,
            &mut FcfsPolicy::new(),
            &service,
            &cfg,
            &faults,
        );
        assert!(
            r.metrics.failure_evictions > 0,
            "outage hit nobody: {:#?}",
            r.records
        );
        assert!(r.metrics.work_lost_frac > 0.0);
        assert!(r.metrics.mean_recovery_s > 0.0);
        assert_eq!(r.metrics.finished, 4, "records: {:#?}", r.records);
        // Goodput excludes the re-done work, so it sits strictly below
        // the zero-fault run's.
        let baseline = run(&mut FcfsPolicy::new());
        assert!(r.metrics.goodput_sps > 0.0);
        assert!(r.metrics.avg_jct_s > baseline.metrics.avg_jct_s);
    }

    #[test]
    fn shorter_checkpoint_interval_loses_less_work() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        let faults = pool0_outage(1000.0, 5000.0, 16);
        let run_with = |interval: f64| {
            let mut cfg = SimConfig::new(48.0 * 3600.0);
            cfg.checkpoint_interval_s = interval;
            simulate_with_faults(
                &cluster,
                &jobs,
                &mut FcfsPolicy::new(),
                &service,
                &cfg,
                &faults,
            )
        };
        let short = run_with(300.0);
        let never = run_with(f64::INFINITY);
        assert!(never.metrics.work_lost_frac > 0.0);
        assert!(
            short.metrics.work_lost_frac < never.metrics.work_lost_frac,
            "short {} vs never {}",
            short.metrics.work_lost_frac,
            never.metrics.work_lost_frac
        );
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let cluster = presets::physical_testbed();
        let faults = arena_trace::generate_faults(
            &arena_trace::FaultConfig::with_mtbf(20_000.0),
            &[16, 16],
            48.0 * 3600.0,
        );
        assert!(!faults.is_empty());
        let go = || {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            simulate_with_faults(
                &cluster,
                &tiny_trace(),
                &mut GavelPolicy::new(),
                &service,
                &SimConfig::new(48.0 * 3600.0),
                &faults,
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.metrics.avg_jct_s, b.metrics.avg_jct_s);
        assert_eq!(a.metrics.failure_evictions, b.metrics.failure_evictions);
        assert_eq!(a.metrics.goodput_sps, b.metrics.goodput_sps);
        assert_eq!(a.timeline, b.timeline);
        let ra: Vec<u32> = a.records.iter().map(|r| r.restarts).collect();
        let rb: Vec<u32> = b.records.iter().map(|r| r.restarts).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn traced_run_produces_a_valid_timeline_with_matching_gpu_seconds() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let obs = Obs::enabled();
        let r = simulate_traced(
            &cluster,
            &tiny_trace(),
            &mut FcfsPolicy::new(),
            &service,
            &SimConfig::new(48.0 * 3600.0),
            &obs,
        );
        let tl = &r.trace.timeline;
        assert!(!tl.is_empty(), "traced run recorded no timeline");
        tl.validate().expect("timeline passes the state machine");
        assert_eq!(tl.nodes.len(), 32, "testbed has 2 pools x 16 nodes");
        let accounts = tl.accounts();
        for rec in &r.records {
            let acc = &accounts[&rec.id];
            assert_eq!(acc.productive_gpu_s, rec.productive_gpu_s, "job {}", rec.id);
            assert_eq!(acc.allocated_gpu_s, rec.allocated_gpu_s, "job {}", rec.id);
            assert_eq!(acc.run_s, rec.run_s, "job {}", rec.id);
            assert!(rec.allocated_gpu_s >= rec.productive_gpu_s);
        }
        assert!(r.metrics.productive_gpu_s > 0.0);
        assert!(r.metrics.cluster_util_frac > 0.0);
        assert!(r.metrics.cluster_util_frac <= 1.0);
        let util = tl.utilization();
        assert!(!util.is_empty());
        assert!(util.iter().all(|s| s.busy_gpus <= s.total_gpus));
    }

    #[test]
    fn faulted_timeline_records_node_failure_stops() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let mut cfg = SimConfig::new(48.0 * 3600.0);
        cfg.checkpoint_interval_s = f64::INFINITY;
        let faults = pool0_outage(1000.0, 5000.0, 16);
        let obs = Obs::enabled();
        let r = simulate_with_faults_traced(
            &cluster,
            &tiny_trace(),
            &mut FcfsPolicy::new(),
            &service,
            &cfg,
            &faults,
            &obs,
        );
        let tl = &r.trace.timeline;
        tl.validate().unwrap();
        let stops: Vec<f64> = tl
            .events
            .iter()
            .filter_map(|e| match e.kind {
                JobEventKind::Stop {
                    cause: StopCause::NodeFailure,
                    lost_iters,
                } => Some(lost_iters),
                _ => None,
            })
            .collect();
        assert_eq!(stops.len(), r.metrics.failure_evictions);
        assert!(
            stops.iter().any(|&l| l > 0.0),
            "no rollback recorded: {stops:?}"
        );
        let accounts = tl.accounts();
        for rec in &r.records {
            assert_eq!(
                accounts[&rec.id].productive_gpu_s, rec.productive_gpu_s,
                "job {}",
                rec.id
            );
        }
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_fault_schedule_rejected() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let mut faults = pool0_outage(1000.0, 5000.0, 2);
        faults.reverse();
        let _ = simulate_with_faults(
            &cluster,
            &tiny_trace(),
            &mut FcfsPolicy::new(),
            &service,
            &SimConfig::new(1000.0),
            &faults,
        );
    }

    #[test]
    #[should_panic(expected = "sorted by submission")]
    fn unsorted_trace_rejected() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let mut jobs = tiny_trace();
        jobs.swap(0, 3);
        let _ = simulate(
            &cluster,
            &jobs,
            &mut FcfsPolicy::new(),
            &service,
            &SimConfig::new(1000.0),
        );
    }
}
