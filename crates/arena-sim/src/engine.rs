//! The event loop: arrivals, rounds, restarts, completions.

use arena_cluster::{Allocation, Cluster};
use arena_sched::PlanService;
use arena_sched::{Action, JobView, PlacementView, PlanMode, Policy, SchedEvent, SchedView};
use arena_trace::JobSpec;

use crate::metrics::{aggregate, JobRecord, Metrics};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduling-round interval, seconds (§7: 5 minutes).
    pub round_interval_s: f64,
    /// Fixed (re)start overhead per placement, seconds (process launch,
    /// NCCL bootstrap).
    pub restart_overhead_s: f64,
    /// Shared-storage bandwidth for checkpoint save + restore, bytes/s;
    /// restarting a job additionally costs `2 x checkpoint / bandwidth`,
    /// so shuffling big models is proportionally more expensive.
    pub checkpoint_bw_bps: f64,
    /// Hard stop; jobs still queued/running are recorded as unfinished.
    pub horizon_s: f64,
}

impl SimConfig {
    /// The defaults used throughout the evaluation.
    #[must_use]
    pub fn new(horizon_s: f64) -> Self {
        SimConfig {
            round_interval_s: 300.0,
            restart_overhead_s: 30.0,
            checkpoint_bw_bps: 2.0e9,
            horizon_s,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The policy's display name.
    pub policy: String,
    /// Final per-job records.
    pub records: Vec<JobRecord>,
    /// `(time, normalised cluster throughput)` at every round.
    pub timeline: Vec<(f64, f64)>,
    /// `(time, raw cluster throughput in samples/s)` at every round.
    pub raw_timeline: Vec<(f64, f64)>,
    /// Aggregated metrics.
    pub metrics: Metrics,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum JState {
    Queued,
    /// Restarting/exploring until the given time; holds GPUs, no progress.
    Starting(f64),
    Running,
    Finished,
    Dropped,
}

struct SJob {
    spec: JobSpec,
    state: JState,
    remaining: f64,
    alloc: Option<Allocation>,
    pool: usize,
    gpus: usize,
    opportunistic: bool,
    sps: f64,
    iter_time: f64,
    start_s: Option<f64>,
    finish_s: Option<f64>,
    restarts: u32,
    profiled: bool,
}

impl SJob {
    fn active(&self) -> bool {
        matches!(self.state, JState::Starting(_) | JState::Running)
    }
}

const EPS: f64 = 1e-6;

/// Runs `policy` over `jobs` on `cluster` and returns metrics.
///
/// The trace must be sorted by submission time (trace generators produce
/// this order).
///
/// # Examples
///
/// ```
/// use arena_cluster::presets;
/// use arena_perf::CostParams;
/// use arena_sched::{FcfsPolicy, PlanService};
/// use arena_sim::{simulate, SimConfig};
/// use arena_trace::{generate, TraceConfig, TraceKind};
///
/// let cluster = presets::physical_testbed();
/// let service = PlanService::new(&cluster, CostParams::default(), 1);
/// let trace = TraceConfig::new(TraceKind::PaiLow, 1800.0, 64, vec![48.0, 24.0]);
/// let jobs = generate(&trace);
/// let result = simulate(
///     &cluster,
///     &jobs,
///     &mut FcfsPolicy::new(),
///     &service,
///     &SimConfig::new(24.0 * 3600.0),
/// );
/// assert_eq!(
///     result.metrics.finished + result.metrics.dropped + result.metrics.unfinished,
///     jobs.len()
/// );
/// ```
///
/// # Panics
///
/// Panics if the trace is not sorted by `submit_s` or the cluster books
/// are corrupted by inconsistent policy actions (a bug, not an input
/// error).
#[must_use]
pub fn simulate(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
) -> SimResult {
    assert!(
        jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s),
        "trace must be sorted by submission time"
    );
    let mut cluster = cluster.clone();
    let mut sjobs: Vec<SJob> = Vec::with_capacity(jobs.len());
    // Plan databases are cached per configuration: the first job placed
    // on a (model, batch, gpus, pool) combination pays the exploration or
    // tuning wall-clock; later placements reuse the stored plan.
    let mut acquired: std::collections::HashSet<(String, usize, usize, usize)> =
        std::collections::HashSet::new();
    let mut t = 0.0_f64;
    let mut arrival_idx = 0;
    let mut next_round = cfg.round_interval_s;
    let mut timeline: Vec<(f64, f64)> = Vec::new();
    let mut raw_timeline: Vec<(f64, f64)> = Vec::new();
    let mut decisions: Vec<f64> = Vec::new();

    loop {
        // Next event candidates.
        let next_arrival = jobs.get(arrival_idx).map(|j| j.submit_s);
        let next_job_event = sjobs
            .iter()
            .filter_map(|j| match j.state {
                JState::Starting(r) => Some(r),
                JState::Running => Some(t + j.remaining * j.iter_time),
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        let te = [
            next_arrival.unwrap_or(f64::INFINITY),
            next_round,
            next_job_event,
            cfg.horizon_s,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);

        if !te.is_finite() {
            break;
        }

        // Advance running jobs to `te`.
        let dt = (te - t).max(0.0);
        for j in &mut sjobs {
            if j.state == JState::Running && j.iter_time > 0.0 {
                j.remaining = (j.remaining - dt / j.iter_time).max(0.0);
            }
        }
        t = te;
        if t >= cfg.horizon_s - EPS {
            break;
        }

        // 1. Starting -> Running transitions due now.
        for j in &mut sjobs {
            if let JState::Starting(r) = j.state {
                if r <= t + EPS {
                    j.state = JState::Running;
                    j.start_s.get_or_insert(t);
                }
            }
        }

        // 2. Completions due now (free resources before anything else).
        let mut event: Option<SchedEvent> = None;
        for j in &mut sjobs {
            if j.state == JState::Running && j.remaining <= EPS {
                j.state = JState::Finished;
                j.finish_s = Some(t);
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release finished job");
                }
                event = Some(SchedEvent::Departure(j.spec.id));
            }
        }

        // 3. Arrivals due now.
        while arrival_idx < jobs.len() && jobs[arrival_idx].submit_s <= t + EPS {
            let spec = jobs[arrival_idx].clone();
            arrival_idx += 1;
            let iters = spec.iterations as f64;
            let id = spec.id;
            sjobs.push(SJob {
                spec,
                state: JState::Queued,
                remaining: iters,
                alloc: None,
                pool: 0,
                gpus: 0,
                opportunistic: false,
                sps: 0.0,
                iter_time: 0.0,
                start_s: None,
                finish_s: None,
                restarts: 0,
                profiled: false,
            });
            event = Some(SchedEvent::Arrival(id));
        }

        // 4. Round tick.
        if next_round <= t + EPS {
            next_round += cfg.round_interval_s;
            event.get_or_insert(SchedEvent::Round);
        }

        // 5. Let the policy react.
        if let Some(ev) = event {
            let actions = {
                let queued: Vec<JobView> = sjobs
                    .iter()
                    .filter(|j| j.state == JState::Queued)
                    .map(job_view)
                    .collect();
                let running: Vec<JobView> =
                    sjobs.iter().filter(|j| j.active()).map(job_view).collect();
                let pools = cluster.pool_stats();
                let view = SchedView {
                    now_s: t,
                    queued: &queued,
                    running: &running,
                    pools: &pools,
                    service,
                };
                let started = std::time::Instant::now();
                let actions = policy.schedule(ev, &view);
                decisions.push(started.elapsed().as_secs_f64());
                actions
            };
            execute(
                &actions,
                &mut sjobs,
                &mut cluster,
                service,
                policy,
                cfg,
                t,
                &mut acquired,
            );
        }

        // 6. Sample the throughput timeline at round boundaries.
        if matches!(event, Some(SchedEvent::Round)) {
            timeline.push((t, normalized_throughput(&sjobs, service)));
            raw_timeline.push((t, raw_throughput(&sjobs)));
        }

        // Termination: no arrivals left, nothing queued or active.
        let live = sjobs.iter().any(|j| {
            matches!(
                j.state,
                JState::Queued | JState::Starting(_) | JState::Running
            )
        });
        if arrival_idx >= jobs.len() && !live {
            break;
        }
    }

    let records: Vec<JobRecord> = sjobs
        .iter()
        .map(|j| JobRecord {
            id: j.spec.id,
            name: j.spec.name.clone(),
            submit_s: j.spec.submit_s,
            start_s: j.start_s,
            finish_s: j.finish_s,
            dropped: j.state == JState::Dropped,
            restarts: j.restarts,
            deadline_met: j
                .spec
                .deadline_s
                .map(|d| j.finish_s.is_some_and(|f| f <= d)),
        })
        .collect();
    let metrics = aggregate(&records, &timeline, &raw_timeline, &decisions);
    SimResult {
        policy: policy.name().to_string(),
        records,
        timeline,
        raw_timeline,
        metrics,
    }
}

fn job_view(j: &SJob) -> JobView {
    JobView {
        spec: j.spec.clone(),
        remaining_iters: j.remaining,
        #[allow(clippy::unnecessary_lazy_evaluations)]
        placement: j.active().then(|| PlacementView {
            pool: arena_cluster::GpuTypeId(j.pool),
            gpus: j.gpus,
            throughput_sps: j.sps,
            opportunistic: j.opportunistic,
        }),
    }
}

fn raw_throughput(sjobs: &[SJob]) -> f64 {
    sjobs
        .iter()
        .filter(|j| j.state == JState::Running)
        .map(|j| j.sps)
        .sum()
}

fn normalized_throughput(sjobs: &[SJob], service: &PlanService) -> f64 {
    sjobs
        .iter()
        .filter(|j| j.state == JState::Running)
        .map(|j| j.sps / service.ideal_sps(&j.spec))
        .sum()
}

#[allow(clippy::too_many_arguments)]
fn execute(
    actions: &[Action],
    sjobs: &mut [SJob],
    cluster: &mut Cluster,
    service: &PlanService,
    policy: &dyn Policy,
    cfg: &SimConfig,
    t: f64,
    acquired: &mut std::collections::HashSet<(String, usize, usize, usize)>,
) {
    for action in actions {
        match *action {
            Action::Drop { job } => {
                let Some(j) = sjobs.iter_mut().find(|j| j.spec.id == job) else {
                    continue;
                };
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release dropped job");
                }
                j.state = JState::Dropped;
            }
            Action::Evict { job } => {
                let Some(j) = sjobs.iter_mut().find(|j| j.spec.id == job) else {
                    continue;
                };
                if j.active() {
                    if let Some(alloc) = j.alloc.take() {
                        cluster.release(&alloc).expect("release evicted job");
                    }
                    j.state = JState::Queued;
                    j.restarts += 1;
                    j.opportunistic = false;
                }
            }
            Action::Place {
                job,
                pool,
                gpus,
                opportunistic,
            } => {
                let Some(j) = sjobs.iter_mut().find(|j| j.spec.id == job) else {
                    continue;
                };
                if matches!(j.state, JState::Finished | JState::Dropped) {
                    continue;
                }
                // No-op placement: already running exactly like this.
                if j.active() && j.pool == pool.0 && j.gpus == gpus {
                    continue;
                }
                let run = match policy.plan_mode() {
                    PlanMode::Adaptive => service.adaptive_run(&j.spec.model, gpus, pool),
                    PlanMode::Cell => service.arena_run(&j.spec.model, gpus, pool),
                };
                let Some(run) = run else {
                    continue; // Infeasible placement: ignored.
                };
                let was_active = j.active();
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release re-placed job");
                }
                match cluster.allocate(pool, gpus) {
                    Ok(alloc) => {
                        if was_active {
                            j.restarts += 1;
                        }
                        // Profiling overlaps queueing (§8.2: one spare GPU
                        // per type suffices); the exploration/tuning wall
                        // is paid once per configuration (plan databases
                        // are cached) on top of the restart overhead.
                        let key = (j.spec.model.name(), j.spec.model.global_batch, gpus, pool.0);
                        let first = acquired.insert(key);
                        // Checkpoint save + optimizer-state restore scale
                        // with the model's training state (16 B/param).
                        let state_bytes = 8.0 * service.graph(&j.spec.model).total_param_bytes();
                        let ckpt = 2.0 * state_bytes / cfg.checkpoint_bw_bps;
                        let delay = cfg.restart_overhead_s
                            + ckpt
                            + if first { run.acquire_wall_s } else { 0.0 };
                        j.profiled = true;
                        j.alloc = Some(alloc);
                        j.pool = pool.0;
                        j.gpus = gpus;
                        j.opportunistic = opportunistic;
                        j.sps = run.throughput_sps;
                        j.iter_time = run.iter_time_s;
                        j.state = JState::Starting(t + delay);
                    }
                    Err(_) => {
                        // Capacity race: job returns to the queue.
                        if was_active {
                            j.restarts += 1;
                        }
                        j.state = JState::Queued;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::presets;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_perf::CostParams;
    use arena_sched::{ArenaPolicy, FcfsPolicy, GavelPolicy};

    fn tiny_trace() -> Vec<JobSpec> {
        let mk = |id: u64, submit: f64, size: f64, gpus: usize, iters: u64| JobSpec {
            id,
            name: format!("j{id}"),
            submit_s: submit,
            model: ModelConfig::new(ModelFamily::Bert, size, 256),
            iterations: iters,
            requested_gpus: gpus,
            requested_pool: 0,
            deadline_s: None,
        };
        vec![
            mk(0, 0.0, 0.76, 4, 300),
            mk(1, 100.0, 1.3, 8, 200),
            mk(2, 200.0, 0.76, 2, 400),
            mk(3, 2000.0, 1.3, 4, 200),
        ]
    }

    fn run(policy: &mut dyn Policy) -> SimResult {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        simulate(
            &cluster,
            &jobs,
            policy,
            &service,
            &SimConfig::new(48.0 * 3600.0),
        )
    }

    #[test]
    fn fcfs_finishes_everything() {
        let r = run(&mut FcfsPolicy::new());
        assert_eq!(r.metrics.finished, 4, "records: {:#?}", r.records);
        assert_eq!(r.metrics.dropped, 0);
        assert_eq!(r.metrics.unfinished, 0);
        for rec in &r.records {
            let jct = rec.jct_s().unwrap();
            assert!(jct > 0.0);
            let q = rec.queue_s().unwrap();
            assert!(q >= 0.0 && q <= jct);
        }
    }

    #[test]
    fn arena_finishes_everything_and_beats_or_matches_fcfs_jct() {
        let fcfs = run(&mut FcfsPolicy::new());
        let arena = run(&mut ArenaPolicy::new());
        assert_eq!(arena.metrics.finished, 4);
        // On this under-loaded toy trace both finish everything; Arena
        // must not be wildly worse despite its profiling delays.
        assert!(
            arena.metrics.avg_jct_s < 2.5 * fcfs.metrics.avg_jct_s,
            "arena {} vs fcfs {}",
            arena.metrics.avg_jct_s,
            fcfs.metrics.avg_jct_s
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run(&mut GavelPolicy::new());
        let b = run(&mut GavelPolicy::new());
        assert_eq!(a.metrics.avg_jct_s, b.metrics.avg_jct_s);
        assert_eq!(a.metrics.finished, b.metrics.finished);
        assert_eq!(a.timeline.len(), b.timeline.len());
    }

    #[test]
    fn timeline_is_sampled_and_bounded() {
        let r = run(&mut FcfsPolicy::new());
        assert!(!r.timeline.is_empty());
        for &(time, v) in &r.timeline {
            assert!(time >= 0.0);
            // Normalised throughput of 4 jobs can never exceed ~4 plus
            // noise slack.
            assert!((0.0..=5.0).contains(&v), "throughput {v} at {time}");
        }
    }

    #[test]
    fn horizon_cuts_off_unfinished_jobs() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        let r = simulate(
            &cluster,
            &jobs,
            &mut FcfsPolicy::new(),
            &service,
            &SimConfig::new(2500.0),
        );
        assert!(r.metrics.finished < 4);
        assert_eq!(
            r.metrics.finished + r.metrics.unfinished + r.metrics.dropped,
            4
        );
    }

    #[test]
    fn slower_checkpoints_stretch_jcts() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let jobs = tiny_trace();
        let run = |bw: f64| {
            let mut cfg = SimConfig::new(48.0 * 3600.0);
            cfg.checkpoint_bw_bps = bw;
            simulate(&cluster, &jobs, &mut FcfsPolicy::new(), &service, &cfg)
        };
        let fast = run(20.0e9);
        let slow = run(0.1e9);
        assert!(
            slow.metrics.avg_jct_s > fast.metrics.avg_jct_s,
            "slow {} <= fast {}",
            slow.metrics.avg_jct_s,
            fast.metrics.avg_jct_s
        );
    }

    #[test]
    #[should_panic(expected = "sorted by submission")]
    fn unsorted_trace_rejected() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let mut jobs = tiny_trace();
        jobs.swap(0, 3);
        let _ = simulate(
            &cluster,
            &jobs,
            &mut FcfsPolicy::new(),
            &service,
            &SimConfig::new(1000.0),
        );
    }
}
