//! Segmented job-table storage with whole-segment reclamation.
//!
//! The incremental engine historically kept every job ever submitted in
//! one `Vec<SJob>`: indices are handed to event heaps and membership
//! sets, so slots must never move or be reused — and batch traces are
//! small enough that keeping terminal jobs around until [`finish`]
//! builds their records is free. A streaming run is not: a million-job
//! trace would pin a million terminal `SJob`s (each holding an
//! `Arc<JobSpec>` with the job's name) to the end of the run.
//!
//! [`JobStore`] keeps the `Vec` contract — indices are assigned
//! monotonically, never move, and are never reused — while letting
//! record-fold mode return a terminal job's memory early. Slots are
//! grouped into fixed-size segments; reclaiming a slot drops its `SJob`
//! in place, and a sealed segment whose slots are all reclaimed is
//! freed wholesale. Arrivals are chronological, so live jobs cluster in
//! the newest segments and a drained run's memory follows the arrival
//! frontier instead of the trace length.
//!
//! Reclamation is strictly opt-in (the engine's record-fold mode): a
//! batch run never reclaims, every slot stays live, and the store is
//! bitwise a `Vec<SJob>` with extra bookkeeping.
//!
//! [`finish`]: crate::Engine::finish

use crate::engine::SJob;

/// Slots per segment. Small enough that a partial tail segment wastes
/// little, large enough that segment bookkeeping is noise: at ~300
/// bytes per slot a segment is ~1.2 MiB.
const SEGMENT_SLOTS: usize = 4096;

struct Segment {
    slots: Vec<Option<SJob>>,
    live: usize,
}

/// Append-only job table with stable indices and per-slot reclamation.
pub(crate) struct JobStore {
    /// `None` once a sealed (full) segment has been fully reclaimed.
    segments: Vec<Option<Box<Segment>>>,
    /// Slots ever pushed — the index the next push returns.
    pushed: usize,
    /// Slots currently holding a job.
    live: usize,
}

impl JobStore {
    pub(crate) fn new() -> Self {
        JobStore {
            segments: Vec::new(),
            pushed: 0,
            live: 0,
        }
    }

    /// Slots ever pushed (the historical `Vec::len`), monotonic.
    #[cfg_attr(not(test), allow(dead_code))] // part of the Vec contract; engine derives indices from push
    pub(crate) fn len(&self) -> usize {
        self.pushed
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Slots currently holding a job.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Appends a job, returning its permanent index.
    pub(crate) fn push(&mut self, job: SJob) -> usize {
        let idx = self.pushed;
        if idx.is_multiple_of(SEGMENT_SLOTS) {
            self.segments.push(Some(Box::new(Segment {
                slots: Vec::with_capacity(SEGMENT_SLOTS),
                live: 0,
            })));
        }
        let seg = self.segments[idx / SEGMENT_SLOTS]
            .as_mut()
            .expect("push target segment cannot have been reclaimed");
        seg.slots.push(Some(job));
        seg.live += 1;
        self.pushed += 1;
        self.live += 1;
        idx
    }

    /// The job at `idx`, or `None` if the slot was reclaimed (or never
    /// pushed).
    pub(crate) fn get(&self, idx: usize) -> Option<&SJob> {
        self.segments
            .get(idx / SEGMENT_SLOTS)?
            .as_ref()?
            .slots
            .get(idx % SEGMENT_SLOTS)?
            .as_ref()
    }

    fn get_mut(&mut self, idx: usize) -> Option<&mut SJob> {
        self.segments
            .get_mut(idx / SEGMENT_SLOTS)?
            .as_mut()?
            .slots
            .get_mut(idx % SEGMENT_SLOTS)?
            .as_mut()
    }

    /// Whether `idx` is live with a matching heap generation — the
    /// event heaps' staleness test. A reclaimed slot reads as stale,
    /// which is exact: reclamation requires the terminal transition
    /// that already bumped the generation past every outstanding entry.
    pub(crate) fn is_fresh(&self, idx: usize, generation: u64) -> bool {
        self.get(idx).is_some_and(|j| j.generation == generation)
    }

    /// Drops the job at `idx` and frees its segment once every slot in
    /// it is gone. Idempotent on already-reclaimed slots.
    pub(crate) fn reclaim(&mut self, idx: usize) {
        let seg_idx = idx / SEGMENT_SLOTS;
        let Some(Some(seg)) = self.segments.get_mut(seg_idx) else {
            return;
        };
        let Some(slot) = seg.slots.get_mut(idx % SEGMENT_SLOTS) else {
            return;
        };
        if slot.take().is_some() {
            seg.live -= 1;
            self.live -= 1;
            // Only sealed segments are dropped whole: the tail segment
            // may still receive pushes.
            if seg.live == 0 && seg.slots.len() == SEGMENT_SLOTS {
                self.segments[seg_idx] = None;
            }
        }
    }

    /// Live `(index, job)` pairs in ascending index (= submission)
    /// order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, &SJob)> {
        self.segments.iter().enumerate().flat_map(|(s, seg)| {
            seg.iter().flat_map(move |seg| {
                seg.slots
                    .iter()
                    .enumerate()
                    .filter_map(move |(o, slot)| slot.as_ref().map(|j| (s * SEGMENT_SLOTS + o, j)))
            })
        })
    }

    /// Mutable variant of [`JobStore::iter`].
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut SJob)> {
        self.segments.iter_mut().enumerate().flat_map(|(s, seg)| {
            seg.iter_mut().flat_map(move |seg| {
                seg.slots
                    .iter_mut()
                    .enumerate()
                    .filter_map(move |(o, slot)| slot.as_mut().map(|j| (s * SEGMENT_SLOTS + o, j)))
            })
        })
    }

    /// Segments still resident in memory (sealed-and-drained ones are
    /// freed). Exposed for tests and occupancy telemetry.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn resident_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.is_some()).count()
    }
}

impl std::ops::Index<usize> for JobStore {
    type Output = SJob;
    fn index(&self, idx: usize) -> &SJob {
        self.get(idx)
            .expect("job slot reclaimed or never pushed (store index)")
    }
}

impl std::ops::IndexMut<usize> for JobStore {
    fn index_mut(&mut self, idx: usize) -> &mut SJob {
        self.get_mut(idx)
            .expect("job slot reclaimed or never pushed (store index)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::JState;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_trace::JobSpec;
    use std::sync::Arc;

    fn job(id: u64) -> SJob {
        SJob {
            spec: Arc::new(JobSpec {
                id,
                name: format!("j{id}"),
                submit_s: id as f64,
                model: ModelConfig::new(ModelFamily::Bert, 0.76, 256),
                iterations: 10,
                requested_gpus: 1,
                requested_pool: 0,
                deadline_s: None,
            }),
            model_key: 0,
            state: JState::Queued,
            generation: id, // distinguishable per job for is_fresh tests
            last_update_s: 0.0,
            remaining: 10.0,
            alloc: None,
            home: 0,
            pool: 0,
            gpus: 0,
            opportunistic: false,
            sps: 0.0,
            iter_time: 0.0,
            start_s: None,
            finish_s: None,
            restarts: 0,
            profiled: false,
            since_ckpt_s: 0.0,
            recovering_since: None,
            run_since: None,
            alloc_since: None,
            run_s: 0.0,
            productive_gpu_s: 0.0,
            allocated_gpu_s: 0.0,
        }
    }

    #[test]
    fn indices_are_monotonic_and_stable() {
        let mut store = JobStore::new();
        for i in 0..10u64 {
            assert_eq!(store.push(job(i)), i as usize);
        }
        assert_eq!(store.len(), 10);
        assert_eq!(store.live(), 10);
        store.reclaim(3);
        assert_eq!(store.len(), 10, "len is monotonic across reclaims");
        assert_eq!(store.live(), 9);
        assert!(store.get(3).is_none());
        assert_eq!(store[4].spec.id, 4, "neighbours keep their slots");
        // Reclaim is idempotent.
        store.reclaim(3);
        assert_eq!(store.live(), 9);
        // New pushes never reuse the freed index.
        assert_eq!(store.push(job(10)), 10);
    }

    #[test]
    fn is_fresh_reads_reclaimed_slots_as_stale() {
        let mut store = JobStore::new();
        store.push(job(0));
        store.push(job(1));
        assert!(store.is_fresh(1, 1));
        assert!(!store.is_fresh(1, 0), "generation mismatch is stale");
        store.reclaim(1);
        assert!(!store.is_fresh(1, 1), "reclaimed slot is stale");
        assert!(!store.is_fresh(99, 0), "never-pushed slot is stale");
    }

    #[test]
    fn iter_skips_reclaimed_slots_in_order() {
        let mut store = JobStore::new();
        for i in 0..6u64 {
            store.push(job(i));
        }
        store.reclaim(0);
        store.reclaim(4);
        let ids: Vec<(usize, u64)> = store.iter().map(|(i, j)| (i, j.spec.id)).collect();
        assert_eq!(ids, vec![(1, 1), (2, 2), (3, 3), (5, 5)]);
        for (_, j) in store.iter_mut() {
            j.restarts += 1;
        }
        assert_eq!(store[5].restarts, 1);
    }

    #[test]
    fn drained_sealed_segments_are_freed_whole() {
        let mut store = JobStore::new();
        let total = 2 * SEGMENT_SLOTS + 7;
        for i in 0..total {
            store.push(job(i as u64));
        }
        assert_eq!(store.resident_segments(), 3);
        // Drain the first segment entirely: it is sealed, so it drops.
        for i in 0..SEGMENT_SLOTS {
            store.reclaim(i);
        }
        assert_eq!(store.resident_segments(), 2);
        // Drain the tail (unsealed) segment: it stays resident so later
        // pushes can land in it.
        for i in 2 * SEGMENT_SLOTS..total {
            store.reclaim(i);
        }
        assert_eq!(store.resident_segments(), 2);
        assert_eq!(store.push(job(total as u64)), total);
        assert_eq!(store[total].spec.id, total as u64);
        // Accessing a freed segment's slots yields None, not a panic.
        assert!(store.get(10).is_none());
        assert_eq!(store.live(), SEGMENT_SLOTS + 1);
    }
}
