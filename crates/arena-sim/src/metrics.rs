//! Metric collection and aggregation.

use serde::Serialize;

/// Final record of one job's life.
#[derive(Debug, Clone, Serialize)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Submission time, seconds.
    pub submit_s: f64,
    /// First time the job began making progress (None if never started).
    pub start_s: Option<f64>,
    /// Completion time (None if unfinished at the horizon or dropped).
    pub finish_s: Option<f64>,
    /// Whether the scheduler rejected the job.
    pub dropped: bool,
    /// Times the job was restarted (evicted, rescaled or migrated).
    pub restarts: u32,
    /// Wall-clock the job spent making progress, seconds.
    pub run_s: f64,
    /// GPU-seconds spent making progress (running time × GPUs held).
    pub productive_gpu_s: f64,
    /// GPU-seconds held in total, including restart/profiling stalls
    /// where the GPUs were allocated but idle.
    pub allocated_gpu_s: f64,
    /// Deadline satisfaction (None for jobs without deadlines).
    pub deadline_met: Option<bool>,
}

impl JobRecord {
    /// Job completion time, if the job finished.
    #[must_use]
    pub fn jct_s(&self) -> Option<f64> {
        self.finish_s.map(|f| f - self.submit_s)
    }

    /// Queueing time (submission to first progress), if it ever started.
    #[must_use]
    pub fn queue_s(&self) -> Option<f64> {
        self.start_s.map(|s| s - self.submit_s)
    }
}

/// Order-independent hash of one job record over a canonical field
/// encoding (ids and counters little-endian, floats by IEEE bit
/// pattern, `Option`s tagged). Two records hash equal iff every
/// observable field is bitwise equal.
fn record_hash(r: &JobRecord) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let opt_f64 = |v: Option<f64>| match v {
        None => [0u8; 9],
        Some(x) => {
            let mut out = [0u8; 9];
            out[0] = 1;
            out[1..].copy_from_slice(&x.to_bits().to_le_bytes());
            out
        }
    };
    eat(&r.id.to_le_bytes());
    eat(&(r.name.len() as u64).to_le_bytes());
    eat(r.name.as_bytes());
    eat(&r.submit_s.to_bits().to_le_bytes());
    eat(&opt_f64(r.start_s));
    eat(&opt_f64(r.finish_s));
    eat(&[u8::from(r.dropped)]);
    eat(&r.restarts.to_le_bytes());
    eat(&r.run_s.to_bits().to_le_bytes());
    eat(&r.productive_gpu_s.to_bits().to_le_bytes());
    eat(&r.allocated_gpu_s.to_bits().to_le_bytes());
    eat(&[match r.deadline_met {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }]);
    h
}

/// Fingerprint of a whole record set, independent of record order.
/// Streaming runs fold records as jobs terminate while batch runs emit
/// them in submission order; because the combination is a commutative
/// fold (wrapping sum + xor of per-record hashes), both orders produce
/// the same fingerprint exactly when the record *multisets* are equal.
#[must_use]
pub fn record_fingerprint(records: &[JobRecord]) -> u64 {
    let mut folded = FoldedRecords::default();
    for r in records {
        folded.fold(r);
    }
    folded.fingerprint()
}

/// Constant-memory aggregate of job records — what a streaming run
/// keeps instead of a `Vec<JobRecord>`. Every field is a commutative
/// fold over per-record contributions, so folding records as jobs
/// terminate (streaming order) matches folding the batch engine's
/// submission-ordered record vector, except that floating-point *sums*
/// may differ in final bits across fold orders; the integer counters
/// and the [`FoldedRecords::fingerprint`] are exactly order-free.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct FoldedRecords {
    /// Records folded in total.
    pub jobs: u64,
    /// Records with a finish time.
    pub finished: u64,
    /// Dropped records.
    pub dropped: u64,
    /// Neither finished nor dropped (ran out the horizon).
    pub unfinished: u64,
    /// Records that ever started.
    pub started: u64,
    /// Total restarts.
    pub restarts: u64,
    /// Sum of JCTs over finished records, seconds.
    pub jct_sum_s: f64,
    /// Max JCT over finished records, seconds.
    pub jct_max_s: f64,
    /// Sum of queueing times over started records, seconds.
    pub queue_sum_s: f64,
    /// Total wall-clock spent running, seconds.
    pub run_sum_s: f64,
    /// Total productive GPU-seconds.
    pub productive_gpu_s: f64,
    /// Total allocated GPU-seconds.
    pub allocated_gpu_s: f64,
    /// Records carrying a deadline.
    pub deadline_total: u64,
    /// Deadline-carrying records that met it.
    pub deadline_met: u64,
    fp_sum: u64,
    fp_xor: u64,
}

impl FoldedRecords {
    /// Folds one record into the aggregate.
    pub fn fold(&mut self, r: &JobRecord) {
        self.jobs += 1;
        if r.dropped {
            self.dropped += 1;
        } else if r.finish_s.is_none() {
            self.unfinished += 1;
        }
        if let Some(jct) = r.jct_s() {
            self.finished += 1;
            self.jct_sum_s += jct;
            self.jct_max_s = self.jct_max_s.max(jct);
        }
        if let Some(q) = r.queue_s() {
            self.started += 1;
            self.queue_sum_s += q;
        }
        self.restarts += u64::from(r.restarts);
        self.run_sum_s += r.run_s;
        self.productive_gpu_s += r.productive_gpu_s;
        self.allocated_gpu_s += r.allocated_gpu_s;
        match r.deadline_met {
            None => {}
            Some(met) => {
                self.deadline_total += 1;
                self.deadline_met += u64::from(met);
            }
        }
        let fp = record_hash(r);
        self.fp_sum = self.fp_sum.wrapping_add(fp);
        self.fp_xor ^= fp;
    }

    /// Order-independent fingerprint of the folded record multiset —
    /// comparable against [`record_fingerprint`] of a batch run's
    /// record vector.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fp_sum ^ self.fp_xor.rotate_left(32)
    }

    /// Mean JCT over finished records, seconds.
    #[must_use]
    pub fn avg_jct_s(&self) -> f64 {
        ratio(self.jct_sum_s, self.finished)
    }

    /// Mean queueing time over started records, seconds.
    #[must_use]
    pub fn avg_queue_s(&self) -> f64 {
        ratio(self.queue_sum_s, self.started)
    }

    /// Mean restarts per started record.
    #[must_use]
    pub fn avg_restarts(&self) -> f64 {
        ratio(self.restarts as f64, self.started)
    }

    /// Fraction of deadline-carrying records that met their deadline
    /// (vacuously 1 with none).
    #[must_use]
    pub fn deadline_satisfaction(&self) -> f64 {
        if self.deadline_total == 0 {
            1.0
        } else {
            self.deadline_met as f64 / self.deadline_total as f64
        }
    }
}

fn ratio(sum: f64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Streaming fold of per-decision scheduler latencies: count, total and
/// max are all the batch engine's `Vec<f64>` ever feeds into
/// [`aggregate`] (which takes its mean), kept without the vector.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct DecisionStats {
    /// Scheduling passes observed.
    pub count: u64,
    /// Total decision wall-clock, seconds.
    pub total_s: f64,
    /// Worst single decision, seconds.
    pub max_s: f64,
}

impl DecisionStats {
    /// Folds one decision latency.
    pub fn observe(&mut self, s: f64) {
        self.count += 1;
        self.total_s += s;
        self.max_s = self.max_s.max(s);
    }

    /// Mean decision wall-clock, seconds.
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        ratio(self.total_s, self.count)
    }
}

/// Raw fault-recovery counters the engine accumulates during a run and
/// hands to [`aggregate`]. A zero-fault run leaves everything except
/// `samples_processed` and `elapsed_s` at zero.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    /// Samples the cluster processed, including work later lost.
    pub samples_processed: f64,
    /// Samples re-done because a failure rolled progress back to the
    /// last checkpoint.
    pub samples_lost: f64,
    /// Jobs evicted by node failures (counted per eviction).
    pub failure_evictions: usize,
    /// Per-eviction wall-clock from failure to the job running again.
    pub recovery_times_s: Vec<f64>,
    /// Wall-clock span of the run, seconds.
    pub elapsed_s: f64,
    /// Nameplate capacity × elapsed time, GPU-seconds (denominator of
    /// cluster utilization).
    pub gpu_capacity_s: f64,
}

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct Metrics {
    /// Mean JCT over finished jobs, seconds.
    pub avg_jct_s: f64,
    /// Median JCT over finished jobs, seconds.
    pub median_jct_s: f64,
    /// Max JCT over finished jobs, seconds.
    pub max_jct_s: f64,
    /// Mean queueing time over started jobs, seconds.
    pub avg_queue_s: f64,
    /// Jobs finished before the horizon.
    pub finished: usize,
    /// Jobs rejected by the scheduler.
    pub dropped: usize,
    /// Jobs still queued or running at the horizon.
    pub unfinished: usize,
    /// Time-average of normalised cluster throughput.
    pub avg_throughput: f64,
    /// Peak of the normalised cluster-throughput timeline.
    pub peak_throughput: f64,
    /// Time-average of raw cluster throughput, samples/s (the paper's
    /// metric; incommensurable across model families but reported for
    /// completeness).
    pub avg_raw_throughput_sps: f64,
    /// Mean restarts per started job.
    pub avg_restarts: f64,
    /// Fraction of deadline-carrying jobs that met their deadline.
    pub deadline_satisfaction: f64,
    /// Mean wall-clock (this process) per scheduling decision, seconds.
    pub avg_decision_s: f64,
    /// Useful samples per second: processed minus failure-lost work over
    /// the run's wall-clock. Equals raw throughput when nothing fails.
    pub goodput_sps: f64,
    /// Fraction of processed samples re-done after failure rollbacks.
    pub work_lost_frac: f64,
    /// Jobs evicted by node failures (per-eviction count).
    pub failure_evictions: usize,
    /// Mean failure-to-running-again wall-clock, seconds (0 with no
    /// failures).
    pub mean_recovery_s: f64,
    /// GPU-seconds spent making progress, summed over all jobs.
    pub productive_gpu_s: f64,
    /// GPU-seconds held by jobs (productive + restart/profiling stalls).
    pub allocated_gpu_s: f64,
    /// Productive GPU-seconds over nameplate capacity GPU-seconds.
    pub cluster_util_frac: f64,
}

/// Aggregates job records and a throughput timeline into [`Metrics`].
#[must_use]
pub fn aggregate(
    records: &[JobRecord],
    timeline: &[(f64, f64)],
    raw_timeline: &[(f64, f64)],
    decision_times: &[f64],
    faults: &FaultLog,
) -> Metrics {
    let mut jcts: Vec<f64> = records.iter().filter_map(JobRecord::jct_s).collect();
    jcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let queues: Vec<f64> = records.iter().filter_map(JobRecord::queue_s).collect();
    let started = records.iter().filter(|r| r.start_s.is_some()).count();
    let restarts: u32 = records.iter().map(|r| r.restarts).sum();
    let ddl_total = records.iter().filter(|r| r.deadline_met.is_some()).count();
    let ddl_met = records
        .iter()
        .filter(|r| r.deadline_met == Some(true))
        .count();

    // Time-weighted averages over the (piecewise-constant) timelines.
    let time_avg = |tl: &[(f64, f64)]| -> (f64, f64) {
        let (mut area, mut span, mut peak) = (0.0, 0.0, 0.0_f64);
        for w in tl.windows(2) {
            let dt = w[1].0 - w[0].0;
            area += w[0].1 * dt;
            span += dt;
            peak = peak.max(w[0].1);
        }
        if let Some(last) = tl.last() {
            peak = peak.max(last.1);
        }
        (if span > 0.0 { area / span } else { 0.0 }, peak)
    };
    let (avg_norm, peak_norm) = time_avg(timeline);
    let (avg_raw, _) = time_avg(raw_timeline);

    Metrics {
        avg_jct_s: mean(&jcts),
        median_jct_s: if jcts.is_empty() {
            0.0
        } else {
            jcts[jcts.len() / 2]
        },
        max_jct_s: jcts.last().copied().unwrap_or(0.0),
        avg_queue_s: mean(&queues),
        finished: records.iter().filter(|r| r.finish_s.is_some()).count(),
        dropped: records.iter().filter(|r| r.dropped).count(),
        unfinished: records
            .iter()
            .filter(|r| !r.dropped && r.finish_s.is_none())
            .count(),
        avg_throughput: avg_norm,
        peak_throughput: peak_norm,
        avg_raw_throughput_sps: avg_raw,
        avg_restarts: if started > 0 {
            f64::from(restarts) / started as f64
        } else {
            0.0
        },
        deadline_satisfaction: if ddl_total > 0 {
            ddl_met as f64 / ddl_total as f64
        } else {
            1.0
        },
        avg_decision_s: mean(decision_times),
        goodput_sps: if faults.elapsed_s > 0.0 {
            (faults.samples_processed - faults.samples_lost).max(0.0) / faults.elapsed_s
        } else {
            0.0
        },
        work_lost_frac: if faults.samples_processed > 0.0 {
            faults.samples_lost / faults.samples_processed
        } else {
            0.0
        },
        failure_evictions: faults.failure_evictions,
        mean_recovery_s: mean(&faults.recovery_times_s),
        productive_gpu_s: records.iter().map(|r| r.productive_gpu_s).sum(),
        allocated_gpu_s: records.iter().map(|r| r.allocated_gpu_s).sum(),
        cluster_util_frac: if faults.gpu_capacity_s > 0.0 {
            records.iter().map(|r| r.productive_gpu_s).sum::<f64>() / faults.gpu_capacity_s
        } else {
            0.0
        },
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, submit: f64, start: Option<f64>, finish: Option<f64>) -> JobRecord {
        JobRecord {
            id,
            name: format!("j{id}"),
            submit_s: submit,
            start_s: start,
            finish_s: finish,
            dropped: false,
            restarts: 0,
            run_s: 0.0,
            productive_gpu_s: 0.0,
            allocated_gpu_s: 0.0,
            deadline_met: None,
        }
    }

    #[test]
    fn jct_and_queue() {
        let r = rec(1, 10.0, Some(25.0), Some(100.0));
        assert_eq!(r.jct_s(), Some(90.0));
        assert_eq!(r.queue_s(), Some(15.0));
        assert_eq!(rec(2, 0.0, None, None).jct_s(), None);
    }

    #[test]
    fn aggregate_counts() {
        let records = vec![
            rec(1, 0.0, Some(5.0), Some(50.0)),
            rec(2, 0.0, Some(10.0), Some(110.0)),
            rec(3, 0.0, Some(20.0), None),
            JobRecord {
                dropped: true,
                ..rec(4, 0.0, None, None)
            },
        ];
        let timeline = vec![(0.0, 2.0), (50.0, 4.0), (100.0, 0.0)];
        let m = aggregate(
            &records,
            &timeline,
            &timeline,
            &[0.1, 0.3],
            &FaultLog::default(),
        );
        assert_eq!(m.finished, 2);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.unfinished, 1);
        assert_eq!(m.avg_jct_s, (50.0 + 110.0) / 2.0);
        assert_eq!(m.max_jct_s, 110.0);
        assert!((m.avg_queue_s - 35.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.peak_throughput, 4.0);
        assert!((m.avg_throughput - 3.0).abs() < 1e-9);
        assert!((m.avg_decision_s - 0.2).abs() < 1e-12);
    }

    #[test]
    fn deadline_satisfaction() {
        let mut a = rec(1, 0.0, Some(1.0), Some(10.0));
        a.deadline_met = Some(true);
        let mut b = rec(2, 0.0, Some(1.0), Some(10.0));
        b.deadline_met = Some(false);
        let m = aggregate(&[a, b], &[], &[], &[], &FaultLog::default());
        assert_eq!(m.deadline_satisfaction, 0.5);
        // No deadline jobs: vacuously satisfied.
        let m2 = aggregate(
            &[rec(1, 0.0, None, None)],
            &[],
            &[],
            &[],
            &FaultLog::default(),
        );
        assert_eq!(m2.deadline_satisfaction, 1.0);
    }

    #[test]
    fn goodput_and_work_lost() {
        let faults = FaultLog {
            samples_processed: 1000.0,
            samples_lost: 250.0,
            failure_evictions: 3,
            recovery_times_s: vec![10.0, 30.0],
            elapsed_s: 100.0,
            gpu_capacity_s: 0.0,
        };
        let m = aggregate(&[], &[], &[], &[], &faults);
        assert!((m.goodput_sps - 7.5).abs() < 1e-12);
        assert!((m.work_lost_frac - 0.25).abs() < 1e-12);
        assert_eq!(m.failure_evictions, 3);
        assert!((m.mean_recovery_s - 20.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_second_aggregation_and_utilization() {
        let mut a = rec(1, 0.0, Some(0.0), Some(100.0));
        a.productive_gpu_s = 300.0;
        a.allocated_gpu_s = 400.0;
        let mut b = rec(2, 0.0, Some(0.0), Some(100.0));
        b.productive_gpu_s = 100.0;
        b.allocated_gpu_s = 100.0;
        let faults = FaultLog {
            elapsed_s: 100.0,
            gpu_capacity_s: 1600.0,
            ..FaultLog::default()
        };
        let m = aggregate(&[a, b], &[], &[], &[], &faults);
        assert_eq!(m.productive_gpu_s, 400.0);
        assert_eq!(m.allocated_gpu_s, 500.0);
        assert!((m.cluster_util_frac - 0.25).abs() < 1e-12);
        // Without a capacity denominator the fraction stays at zero.
        let m0 = aggregate(&[], &[], &[], &[], &FaultLog::default());
        assert_eq!(m0.cluster_util_frac, 0.0);
    }

    #[test]
    fn fingerprint_is_order_free_and_field_sensitive() {
        let records = vec![
            rec(1, 0.0, Some(5.0), Some(50.0)),
            rec(2, 10.0, Some(20.0), None),
            JobRecord {
                dropped: true,
                ..rec(3, 30.0, None, None)
            },
        ];
        let mut reversed = records.clone();
        reversed.reverse();
        assert_eq!(record_fingerprint(&records), record_fingerprint(&reversed));
        // Any field change moves the fingerprint.
        let mut tweaked = records.clone();
        tweaked[0].restarts = 1;
        assert_ne!(record_fingerprint(&records), record_fingerprint(&tweaked));
        let mut tweaked = records.clone();
        tweaked[1].finish_s = Some(90.0);
        assert_ne!(record_fingerprint(&records), record_fingerprint(&tweaked));
        // A missing record is visible even when sums happen to agree.
        assert_ne!(
            record_fingerprint(&records),
            record_fingerprint(&records[..2])
        );
    }

    #[test]
    fn folded_records_match_aggregate_counts() {
        let mut with_deadline = rec(4, 0.0, Some(2.0), Some(9.0));
        with_deadline.deadline_met = Some(true);
        let records = vec![
            rec(1, 0.0, Some(5.0), Some(50.0)),
            rec(2, 0.0, Some(10.0), Some(110.0)),
            rec(3, 0.0, Some(20.0), None),
            JobRecord {
                dropped: true,
                ..rec(5, 0.0, None, None)
            },
            with_deadline,
        ];
        let mut folded = FoldedRecords::default();
        for r in &records {
            folded.fold(r);
        }
        let m = aggregate(&records, &[], &[], &[], &FaultLog::default());
        assert_eq!(folded.jobs as usize, records.len());
        assert_eq!(folded.finished as usize, m.finished);
        assert_eq!(folded.dropped as usize, m.dropped);
        assert_eq!(folded.unfinished as usize, m.unfinished);
        assert_eq!(folded.avg_jct_s(), m.avg_jct_s);
        assert_eq!(folded.jct_max_s, m.max_jct_s);
        assert_eq!(folded.avg_queue_s(), m.avg_queue_s);
        assert_eq!(folded.avg_restarts(), m.avg_restarts);
        assert_eq!(folded.deadline_satisfaction(), m.deadline_satisfaction);
        assert_eq!(folded.fingerprint(), record_fingerprint(&records));
    }

    #[test]
    fn decision_stats_fold_matches_vec_mean() {
        let times = [0.1, 0.3, 0.2];
        let mut stats = DecisionStats::default();
        for t in times {
            stats.observe(t);
        }
        assert_eq!(stats.count, 3);
        assert_eq!(stats.max_s, 0.3);
        assert_eq!(stats.mean_s(), times.iter().sum::<f64>() / 3.0);
        assert_eq!(DecisionStats::default().mean_s(), 0.0);
    }

    #[test]
    fn zero_fault_log_is_clean() {
        let faults = FaultLog {
            samples_processed: 500.0,
            elapsed_s: 50.0,
            ..FaultLog::default()
        };
        let m = aggregate(&[], &[], &[], &[], &faults);
        assert!((m.goodput_sps - 10.0).abs() < 1e-12);
        assert_eq!(m.work_lost_frac, 0.0);
        assert_eq!(m.failure_evictions, 0);
        assert_eq!(m.mean_recovery_s, 0.0);
    }
}
