//! Lazy-deletion binary min-heap of pending job events.
//!
//! The engine pushes one entry per *predicted* job event — a `Starting`
//! deadline or a `Running` completion estimate — tagged with the job's
//! generation counter at push time. Rather than removing entries when a
//! prediction is invalidated (an eviction, a re-place, a refreshed
//! completion estimate), the engine bumps the job's generation; stale
//! entries are discarded when they surface at the top of the heap. This
//! keeps every mutation O(log n) without a decrease-key primitive, and —
//! because staleness is decided by a plain integer compare — the heap's
//! behaviour is a pure function of the push/bump sequence, independent of
//! timing or iteration order.
//!
//! Ordering is total and deterministic: time via [`f64::total_cmp`], ties
//! broken by generation, then job index. NaN times therefore don't
//! panic — `total_cmp` sorts them after infinity, where they can never
//! win the next-event race against the finite horizon.

/// One pending event: the predicted time, the owning job's generation at
/// push time, and the job's index in the engine's job table.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    generation: u64,
    job: usize,
}

impl Entry {
    /// `self` sorts strictly before `other` in the min-heap.
    fn before(&self, other: &Entry) -> bool {
        self.time
            .total_cmp(&other.time)
            .then(self.generation.cmp(&other.generation))
            .then(self.job.cmp(&other.job))
            .is_lt()
    }
}

/// Min-heap of `(time, generation, job)` with lazy deletion.
#[derive(Debug, Default)]
pub(crate) struct EventHeap {
    entries: Vec<Entry>,
}

impl EventHeap {
    /// Records a predicted event for `job` at `time`, valid while the
    /// job's generation still equals `generation`.
    pub(crate) fn push(&mut self, time: f64, generation: u64, job: usize) {
        self.entries.push(Entry {
            time,
            generation,
            job,
        });
        self.sift_up(self.entries.len() - 1);
    }

    /// Time of the earliest still-valid event, or `+inf` when none is
    /// pending. Stale entries (generation mismatch per `is_fresh`)
    /// encountered at the top are popped and dropped; the fresh minimum
    /// itself stays in the heap — it is invalidated by a generation bump
    /// once the engine handles it.
    pub(crate) fn next_fresh(&mut self, mut is_fresh: impl FnMut(usize, u64) -> bool) -> f64 {
        while let Some(top) = self.entries.first() {
            if is_fresh(top.job, top.generation) {
                return top.time;
            }
            self.pop_top();
        }
        f64::INFINITY
    }

    /// Entries currently stored, fresh or stale.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Drops every stale entry and re-heapifies. Purely a memory bound:
    /// stale entries below the top cannot affect [`EventHeap::next_fresh`],
    /// so compaction never changes engine behaviour.
    pub(crate) fn compact(&mut self, mut is_fresh: impl FnMut(usize, u64) -> bool) {
        self.entries.retain(|e| is_fresh(e.job, e.generation));
        for i in (0..self.entries.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    fn pop_top(&mut self) {
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].before(&self.entries[parent]) {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let mut smallest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < n && self.entries[child].before(&self.entries[smallest]) {
                    smallest = child;
                }
            }
            if smallest == i {
                break;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Naive model: the fresh minimum is a scan over every live entry.
    fn model_min(entries: &[(f64, u64, usize)], gens: &HashMap<usize, u64>) -> f64 {
        entries
            .iter()
            .filter(|&&(_, g, j)| gens.get(&j).copied().unwrap_or(0) == g)
            .map(|&(t, _, _)| t)
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn empty_heap_reports_infinity() {
        let mut h = EventHeap::default();
        assert_eq!(h.next_fresh(|_, _| true), f64::INFINITY);
    }

    #[test]
    fn min_is_returned_and_retained() {
        let mut h = EventHeap::default();
        h.push(5.0, 0, 1);
        h.push(2.0, 0, 2);
        h.push(9.0, 0, 3);
        assert_eq!(h.next_fresh(|_, _| true), 2.0);
        // The fresh minimum stays until its generation is bumped.
        assert_eq!(h.next_fresh(|_, _| true), 2.0);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn stale_entries_are_skipped_and_dropped() {
        let mut h = EventHeap::default();
        h.push(1.0, 0, 7); // soon stale
        h.push(3.0, 1, 7); // fresh replacement
        let gen_of = |job: usize| if job == 7 { 1 } else { 0 };
        assert_eq!(h.next_fresh(|j, g| g == gen_of(j)), 3.0);
        assert_eq!(h.len(), 1, "the stale top entry is discarded");
    }

    #[test]
    fn compact_drops_only_stale_entries() {
        let mut h = EventHeap::default();
        for i in 0..10_usize {
            h.push(i as f64, 0, i);
            h.push(i as f64 + 0.5, 1, i);
        }
        h.compact(|_, g| g == 1);
        assert_eq!(h.len(), 10);
        assert_eq!(h.next_fresh(|_, g| g == 1), 0.5);
    }

    proptest! {
        /// Against a linear-scan model: any interleaving of pushes and
        /// generation bumps yields the same fresh minimum.
        #[test]
        fn matches_linear_scan_model(ops in proptest::collection::vec(
            (0_u8..3, 0_usize..8, 0_u32..1000), 1..200,
        )) {
            let mut heap = EventHeap::default();
            let mut entries: Vec<(f64, u64, usize)> = Vec::new();
            let mut gens: HashMap<usize, u64> = HashMap::new();
            for (op, job, raw_time) in ops {
                match op {
                    0 | 1 => {
                        let time = f64::from(raw_time) * 0.25;
                        let g = gens.get(&job).copied().unwrap_or(0);
                        heap.push(time, g, job);
                        entries.push((time, g, job));
                    }
                    _ => {
                        *gens.entry(job).or_insert(0) += 1;
                    }
                }
                let expect = model_min(&entries, &gens);
                let got = heap.next_fresh(|j, g| {
                    gens.get(&j).copied().unwrap_or(0) == g
                });
                prop_assert_eq!(got, expect);
                if heap.len() > 64 {
                    heap.compact(|j, g| gens.get(&j).copied().unwrap_or(0) == g);
                    let after = heap.next_fresh(|j, g| {
                        gens.get(&j).copied().unwrap_or(0) == g
                    });
                    // Compaction must not change the fresh minimum.
                    prop_assert_eq!(after, expect);
                }
            }
        }
    }
}
