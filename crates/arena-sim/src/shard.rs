//! The sharded decision loop: per-partition scheduler shards with a
//! deterministic merge round.
//!
//! The cluster's pools are grouped into *partitions* by an
//! [`arena_cluster::PartitionMap`] (canonically one per pool); a
//! [`ShardPlan`] folds those partitions onto `S` *executor shards*, each
//! owning its own event heap and membership indexes over the jobs homed
//! to it (a job's home is its requested pool's partition, fixed at
//! arrival). Heavy per-shard work — building the policy's view fragments,
//! and the policy's own per-shard candidate prefetch via
//! [`arena_sched::Policy::prepare_shards`] — runs concurrently on an
//! [`arena_runtime::WorkerPool`].
//!
//! **The merge round is what keeps every observable output byte-identical
//! to the unsharded engine at any shard count.** Per-shard index sets
//! partition the global job table, and within a shard every set iterates
//! in ascending global job index (= submission order). Wherever the
//! serial engine walks jobs in ascending index and folds non-associative
//! state (floating-point throughput sums, `FaultLog` accumulation, obs
//! event order, cluster book mutations), the sharded loop first k-way
//! merges the per-shard index streams back into ascending global order
//! with [`arena_runtime::merge_by_index`] and then applies exactly the
//! serial fold. The executor shard count is thereby an execution knob
//! only; `tests/shard_equivalence.rs` pins the byte-identity at shard
//! counts 1/2/4/8, and `DESIGN.md` §12 spells out the argument.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use arena_cluster::{Cluster, GpuTypeId, PartitionMap};
use arena_estimator::Interner;
use arena_obs::{Decision, JobEventKind, Obs, StopCause};
use arena_runtime::{merge_by_index, shards_from_env_or, WorkerPool};
use arena_sched::PlanService;
use arena_sched::{Action, JobView, PlanMode, Policy, SchedEvent, SchedView, ShardQueue};
use arena_trace::{FaultEvent, FaultKind, JobSpec};

use crate::engine::{job_view, EventIndex, JState, SJob, SimConfig, SimResult, EPS};
use crate::metrics::{aggregate, FaultLog, JobRecord};

/// Below this many live jobs, per-shard view fragments are built inline:
/// a view build is an `Arc` bump plus a few scalar copies, so spawning
/// scoped workers (~tens of µs) only pays off for very deep queues. Both
/// paths produce identical fragments, so the cutoff is invisible in
/// output.
const PARALLEL_VIEW_CUTOFF: usize = 4096;

/// How a sharded run partitions the cluster and executes the shards.
///
/// The partition map is semantic (decision provenance records home
/// partitions); the executor shard count and worker pool are execution
/// knobs that must never show up in any observable output. Partitions are
/// folded onto executor shards round-robin (`partition % shards`), so
/// any shard count from 1 (fully serial decisions) to the partition
/// count (one shard per partition) is valid — as are larger counts,
/// which simply leave trailing shards empty.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    partition: PartitionMap,
    shards: usize,
    workers: WorkerPool,
}

impl ShardPlan {
    /// The canonical plan for a cluster: one partition per pool, one
    /// executor shard per partition, inline (sequential) workers.
    #[must_use]
    pub fn per_pool(cluster: &Cluster) -> Self {
        let partition = PartitionMap::for_cluster(cluster);
        let shards = partition.partitions();
        ShardPlan {
            partition,
            shards,
            workers: WorkerPool::sequential(),
        }
    }

    /// Reads `ARENA_SHARDS` for the executor shard count (defaulting to
    /// one shard per partition) and `ARENA_WORKER_THREADS` for the worker
    /// pool (defaulting to sequential).
    #[must_use]
    pub fn from_env(cluster: &Cluster) -> Self {
        let plan = Self::per_pool(cluster);
        let shards = shards_from_env_or(plan.partition.partitions());
        plan.with_shards(shards)
            .with_workers(WorkerPool::from_env_or(1))
    }

    /// Overrides the executor shard count (clamped to at least 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the partition map.
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionMap) -> Self {
        self.partition = partition;
        self
    }

    /// Overrides the worker pool running per-shard work.
    #[must_use]
    pub fn with_workers(mut self, workers: WorkerPool) -> Self {
        self.workers = workers;
        self
    }

    /// Executor shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The pool-to-partition map.
    #[must_use]
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// Executor shard owning `pool`: its partition folded round-robin
    /// onto the shard grid.
    #[must_use]
    pub fn shard_of_pool(&self, pool: usize) -> usize {
        self.partition.partition_of(pool) % self.shards
    }
}

/// [`crate::simulate`] on the sharded decision loop. Output is
/// byte-identical to the unsharded engine at any shard count.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::simulate`].
#[must_use]
pub fn simulate_sharded(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    plan: &ShardPlan,
) -> SimResult {
    simulate_sharded_with_faults(cluster, jobs, policy, service, cfg, &[], plan)
}

/// [`crate::simulate_traced`] on the sharded decision loop.
#[must_use]
pub fn simulate_sharded_traced(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    obs: &Obs,
    plan: &ShardPlan,
) -> SimResult {
    simulate_sharded_with_faults_traced(cluster, jobs, policy, service, cfg, &[], obs, plan)
}

/// [`crate::simulate_with_faults`] on the sharded decision loop.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::simulate_with_faults`].
#[must_use]
pub fn simulate_sharded_with_faults(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    faults: &[FaultEvent],
    plan: &ShardPlan,
) -> SimResult {
    simulate_sharded_with_faults_traced(
        cluster,
        jobs,
        policy,
        service,
        cfg,
        faults,
        &Obs::disabled(),
        plan,
    )
}

/// [`crate::simulate_with_faults_traced`] on the sharded decision loop —
/// the full engine; every other `simulate_sharded*` entry delegates here.
///
/// # Panics
///
/// Panics under the same conditions as
/// [`crate::simulate_with_faults_traced`].
#[must_use]
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn simulate_sharded_with_faults_traced(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    faults: &[FaultEvent],
    obs: &Obs,
    plan: &ShardPlan,
) -> SimResult {
    assert!(
        jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s),
        "trace must be sorted by submission time"
    );
    assert!(
        faults.windows(2).all(|w| w[0].time_s <= w[1].time_s),
        "fault schedule must be sorted by time"
    );
    let shards = plan.shards;
    let cluster_gpu_capacity = cluster.total_gpus();
    if obs.is_enabled() {
        let nodes: Vec<(usize, usize, usize)> = cluster
            .pool_ids()
            .flat_map(|pool| {
                let cap = cluster.spec(pool).gpus_per_node;
                (0..cluster.num_nodes(pool)).map(move |node| (pool.0, node, cap))
            })
            .collect();
        obs.timeline_nodes(&nodes);
    }
    let mut cluster = cluster.clone();
    let mut sjobs: Vec<SJob> = Vec::with_capacity(jobs.len());
    let mut id_of: HashMap<u64, usize> = HashMap::with_capacity(jobs.len());
    // One event heap + membership index per executor shard; a job lives
    // in the index of its home shard for its whole lifetime.
    let mut indexes: Vec<EventIndex> = (0..shards).map(|_| EventIndex::default()).collect();
    let mut home_of: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut due: Vec<usize> = Vec::new();
    let interner = Interner::new();
    let mut acquired: HashSet<(u32, usize, usize, usize)> = HashSet::new();
    let mut t = 0.0_f64;
    let mut arrival_idx = 0;
    let mut fault_idx = 0;
    let mut flog = FaultLog::default();
    let mut next_round = cfg.round_interval_s;
    let mut timeline: Vec<(f64, f64)> = Vec::new();
    let mut raw_timeline: Vec<(f64, f64)> = Vec::new();
    let mut decisions: Vec<f64> = Vec::new();

    loop {
        // Bound heap growth per shard (purely a memory cap, invisible).
        for index in &mut indexes {
            if index.heap.len() > 1024 && index.heap.len() > 8 * (index.active.len() + 1) {
                let EventIndex { heap, .. } = index;
                heap.compact(|job, generation| sjobs[job].generation == generation);
            }
        }

        // Next event candidates. The per-shard heaps partition the serial
        // engine's single heap, and `f64::min` ignores NaN consistently,
        // so the fold over per-shard fresh minima is bitwise the global
        // fresh minimum.
        let next_arrival = jobs.get(arrival_idx).map(|j| j.submit_s);
        let next_fault = faults.get(fault_idx).map_or(f64::INFINITY, |f| f.time_s);
        let next_job_event = indexes
            .iter_mut()
            .map(|ix| {
                ix.heap
                    .next_fresh(|job, generation| sjobs[job].generation == generation)
            })
            .fold(f64::INFINITY, f64::min);
        let te = [
            next_arrival.unwrap_or(f64::INFINITY),
            next_fault,
            next_round,
            next_job_event,
            cfg.horizon_s,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);

        if !te.is_finite() {
            break;
        }

        // Advance running jobs to `te`. Merge round: the per-shard active
        // sets are walked merged back into ascending global index, so
        // `flog.samples_processed` accumulates with the same operands in
        // the same order as the serial engine's single-set walk.
        let dt = (te - t).max(0.0);
        if dt > 0.0 {
            for (i, ()) in merged_indices(&indexes, |ix| ix.active.iter().copied()) {
                let j = &mut sjobs[i];
                if j.state == JState::Running && j.iter_time > 0.0 {
                    j.remaining = (j.remaining - dt / j.iter_time).max(0.0);
                    flog.samples_processed += dt * j.sps;
                    j.since_ckpt_s += dt;
                    if cfg.checkpoint_interval_s > 0.0 && cfg.checkpoint_interval_s.is_finite() {
                        j.since_ckpt_s %= cfg.checkpoint_interval_s;
                    }
                    debug_assert!(j.last_update_s <= te, "job advanced backwards");
                    j.last_update_s = te;
                    j.generation += 1;
                    let (generation, wake) = (j.generation, te + j.remaining * j.iter_time);
                    indexes[home_of[i]].heap.push(wake, generation, i);
                }
            }
        }
        t = te;
        if t >= cfg.horizon_s - EPS {
            break;
        }

        // 1. Starting -> Running transitions due now, in merged global
        // order (recovery-time pushes and RunStart events keep the serial
        // order).
        for (i, ()) in merged_indices(&indexes, |ix| ix.active.iter().copied()) {
            let j = &mut sjobs[i];
            if let JState::Starting(r) = j.state {
                if r <= t + EPS {
                    j.state = JState::Running;
                    j.start_s.get_or_insert(t);
                    j.since_ckpt_s = 0.0;
                    j.flush_alloc(t);
                    j.alloc_since = Some(t);
                    j.run_since = Some(t);
                    j.last_update_s = t;
                    if let Some(since) = j.recovering_since.take() {
                        flog.recovery_times_s.push(t - since);
                    }
                    obs.job_event(t, j.spec.id, JobEventKind::RunStart);
                    j.generation += 1;
                    let (generation, wake) = (j.generation, t + j.remaining * j.iter_time);
                    indexes[home_of[i]].heap.push(wake, generation, i);
                }
            }
        }

        // 2. Completions due now (free resources before anything else),
        // merged so cluster releases and Finish events apply in global
        // order.
        let mut event: Option<SchedEvent> = None;
        due.clear();
        due.extend(
            merged_indices(&indexes, |ix| ix.active.iter().copied())
                .into_iter()
                .map(|(i, ())| i)
                .filter(|&i| {
                    let j = &sjobs[i];
                    j.state == JState::Running && j.remaining <= EPS
                }),
        );
        for &i in &due {
            let j = &mut sjobs[i];
            j.state = JState::Finished;
            j.finish_s = Some(t);
            j.flush_run(t);
            j.flush_alloc(t);
            if let Some(alloc) = j.alloc.take() {
                cluster.release(&alloc).expect("release finished job");
                obs.alloc_event(t, j.spec.id, alloc.pool.0, &alloc.node_gpus, false);
            }
            obs.job_event(t, j.spec.id, JobEventKind::Finish);
            event = Some(SchedEvent::Departure(j.spec.id));
            indexes[home_of[i]].retire(&mut sjobs[i], i);
        }

        // 2b. Fault events due now. Victims landing mid-merge-round are
        // detected per shard and applied in merged global order, so
        // requeue provenance is identical to the serial engine's.
        while fault_idx < faults.len() && faults[fault_idx].time_s <= t + EPS {
            let fault = &faults[fault_idx];
            fault_idx += 1;
            let pool = GpuTypeId(fault.pool);
            let ev = match fault.kind {
                FaultKind::Failure => {
                    cluster
                        .fail_node(pool, fault.node)
                        .expect("fault schedule names a node the cluster has");
                    obs.context(t, "engine", "node-failure");
                    obs.incr("sim.fault.failure", 1);
                    due.clear();
                    due.extend(
                        merged_indices(&indexes, |ix| ix.active.iter().copied())
                            .into_iter()
                            .map(|(i, ())| i)
                            .filter(|&i| {
                                sjobs[i]
                                    .alloc
                                    .as_ref()
                                    .is_some_and(|a| a.uses_node(pool, fault.node))
                            }),
                    );
                    for &i in &due {
                        let j = &mut sjobs[i];
                        let alloc = j.alloc.take().expect("active job holds an allocation");
                        cluster.release(&alloc).expect("release crashed job");
                        j.flush_run(t);
                        j.flush_alloc(t);
                        obs.alloc_event(t, j.spec.id, alloc.pool.0, &alloc.node_gpus, false);
                        let mut rollback = 0.0;
                        if j.state == JState::Running && j.iter_time > 0.0 {
                            let lost_iters = (j.since_ckpt_s / j.iter_time)
                                .min(j.spec.iterations as f64 - j.remaining);
                            j.remaining += lost_iters;
                            flog.samples_lost += lost_iters * j.iter_time * j.sps;
                            rollback = lost_iters;
                        }
                        obs.job_event(
                            t,
                            j.spec.id,
                            JobEventKind::Stop {
                                cause: StopCause::NodeFailure,
                                lost_iters: rollback,
                            },
                        );
                        j.state = JState::Queued;
                        j.restarts += 1;
                        j.opportunistic = false;
                        j.since_ckpt_s = 0.0;
                        j.recovering_since.get_or_insert(t);
                        flog.failure_evictions += 1;
                        obs.decision(
                            Decision::requeue(j.spec.id)
                                .on_shard(j.spec.requested_pool as u32)
                                .why("node-failure-evict"),
                        );
                        indexes[home_of[i]].requeue(&mut sjobs[i], i);
                    }
                    SchedEvent::NodeFailure {
                        pool,
                        node: fault.node,
                    }
                }
                FaultKind::Repair => {
                    cluster
                        .repair_node(pool, fault.node)
                        .expect("fault schedule names a node the cluster has");
                    obs.incr("sim.fault.repair", 1);
                    SchedEvent::NodeRepair {
                        pool,
                        node: fault.node,
                    }
                }
            };
            dispatch(
                ev,
                &mut sjobs,
                &mut indexes,
                &home_of,
                &id_of,
                &mut cluster,
                service,
                policy,
                cfg,
                t,
                &mut acquired,
                &mut decisions,
                obs,
                plan,
            );
        }

        // 3. Arrivals due now, homed onto their shard.
        while arrival_idx < jobs.len() && jobs[arrival_idx].submit_s <= t + EPS {
            let spec = Arc::new(jobs[arrival_idx].clone());
            arrival_idx += 1;
            let iters = spec.iterations as f64;
            let id = spec.id;
            let home = plan.shard_of_pool(spec.requested_pool);
            let model_key = interner.intern(&spec.model.name());
            let idx = sjobs.len();
            sjobs.push(SJob {
                spec,
                model_key,
                state: JState::Queued,
                generation: 0,
                last_update_s: t,
                remaining: iters,
                alloc: None,
                pool: 0,
                gpus: 0,
                opportunistic: false,
                sps: 0.0,
                iter_time: 0.0,
                start_s: None,
                finish_s: None,
                restarts: 0,
                profiled: false,
                since_ckpt_s: 0.0,
                recovering_since: None,
                run_since: None,
                alloc_since: None,
                run_s: 0.0,
                productive_gpu_s: 0.0,
                allocated_gpu_s: 0.0,
            });
            home_of.push(home);
            id_of.entry(id).or_insert(idx);
            indexes[home].queued.insert(idx);
            obs.job_event(t, id, JobEventKind::Submit);
            event = Some(SchedEvent::Arrival(id));
        }

        // 4. Round tick.
        if next_round <= t + EPS {
            next_round += cfg.round_interval_s;
            event.get_or_insert(SchedEvent::Round);
        }

        // 5. Let the policy react.
        if let Some(ev) = event {
            dispatch(
                ev,
                &mut sjobs,
                &mut indexes,
                &home_of,
                &id_of,
                &mut cluster,
                service,
                policy,
                cfg,
                t,
                &mut acquired,
                &mut decisions,
                obs,
                plan,
            );
        }

        // 6. Sample the throughput timeline at round boundaries: both
        // sums fold the merged (ascending global index) running stream,
        // reproducing the serial accumulation order bitwise.
        if matches!(event, Some(SchedEvent::Round)) {
            let running: Vec<usize> = merged_indices(&indexes, |ix| ix.active.iter().copied())
                .into_iter()
                .map(|(i, ())| i)
                .filter(|&i| sjobs[i].state == JState::Running)
                .collect();
            let norm: f64 = running
                .iter()
                .map(|&i| sjobs[i].sps / service.ideal_sps(&sjobs[i].spec))
                .sum();
            let raw: f64 = running.iter().map(|&i| sjobs[i].sps).sum();
            timeline.push((t, norm));
            raw_timeline.push((t, raw));
        }

        // Termination: no arrivals left, nothing queued or active.
        if arrival_idx >= jobs.len()
            && indexes
                .iter()
                .all(|ix| ix.queued.is_empty() && ix.active.is_empty())
        {
            break;
        }
    }

    // Conformance: terminal jobs hold no GPUs, and each home shard's
    // membership indexes agree with the job table.
    for (i, j) in sjobs.iter().enumerate() {
        if matches!(j.state, JState::Finished | JState::Dropped) {
            assert!(j.alloc.is_none(), "terminal job {} holds GPUs", j.spec.id);
        }
        debug_assert_eq!(
            indexes[home_of[i]].queued.contains(&i),
            j.state == JState::Queued,
            "queued index out of sync for job {}",
            j.spec.id
        );
        debug_assert_eq!(
            indexes[home_of[i]].active.contains(&i),
            j.active(),
            "active index out of sync for job {}",
            j.spec.id
        );
    }
    flog.elapsed_s = t.min(cfg.horizon_s);
    flog.gpu_capacity_s = cluster_gpu_capacity as f64 * flog.elapsed_s;
    let t_end = flog.elapsed_s;
    for j in &mut sjobs {
        j.flush_run(t_end);
        j.flush_alloc(t_end);
    }
    obs.timeline_close(t_end);

    let records: Vec<JobRecord> = sjobs
        .iter()
        .map(|j| JobRecord {
            id: j.spec.id,
            name: j.spec.name.clone(),
            submit_s: j.spec.submit_s,
            start_s: j.start_s,
            finish_s: j.finish_s,
            dropped: j.state == JState::Dropped,
            restarts: j.restarts,
            run_s: j.run_s,
            productive_gpu_s: j.productive_gpu_s,
            allocated_gpu_s: j.allocated_gpu_s,
            deadline_met: j
                .spec
                .deadline_s
                .map(|d| j.finish_s.is_some_and(|f| f <= d)),
        })
        .collect();
    let metrics = aggregate(&records, &timeline, &raw_timeline, &decisions, &flog);
    if obs.is_enabled() {
        let est = service.estimator_stats();
        obs.incr("estimator.estimate.hits", est.estimate_hits);
        obs.incr("estimator.estimate.misses", est.estimate_misses);
        obs.incr("estimator.profile.hits", est.profile_hits);
        obs.incr("estimator.profile.misses", est.profile_misses);
        obs.incr("estimator.table.hits", est.table_hits);
        obs.incr("estimator.table.misses", est.table_misses);
    }
    SimResult {
        policy: policy.name().to_string(),
        records,
        timeline,
        raw_timeline,
        metrics,
        trace: obs.report(),
    }
}

/// K-way merges one per-shard index stream back into ascending global
/// (submission) order — the engine-side merge round. The per-shard sets
/// hold disjoint global indices, each iterated ascending, so the merge is
/// exactly the order a single global set would iterate in.
fn merged_indices<'a, I>(
    indexes: &'a [EventIndex],
    stream: impl Fn(&'a EventIndex) -> I,
) -> Vec<(usize, ())>
where
    I: Iterator<Item = usize> + 'a,
{
    if indexes.len() == 1 {
        return stream(&indexes[0]).map(|i| (i, ())).collect();
    }
    merge_by_index(
        indexes
            .iter()
            .map(|ix| stream(ix).map(|i| (i, ())).collect())
            .collect(),
    )
}

/// Per-shard queued/running view fragments: global indices (ascending)
/// alongside the matching views, kept as parallel vectors so the merge
/// round can move the views into the merged vectors without cloning.
struct ViewFragment {
    queued_idx: Vec<usize>,
    queued: Vec<JobView>,
    active_idx: Vec<usize>,
    active: Vec<JobView>,
}

fn build_fragment(ix: &EventIndex, sjobs: &[SJob]) -> ViewFragment {
    ViewFragment {
        queued_idx: ix.queued.iter().copied().collect(),
        queued: ix.queued.iter().map(|&i| job_view(&sjobs[i])).collect(),
        active_idx: ix.active.iter().copied().collect(),
        active: ix.active.iter().map(|&i| job_view(&sjobs[i])).collect(),
    }
}

/// Builds the policy's view shard-by-shard, merges the fragments, runs
/// the policy's per-shard pre-pass and scheduling pass, and executes the
/// actions.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    ev: SchedEvent,
    sjobs: &mut [SJob],
    indexes: &mut [EventIndex],
    home_of: &[usize],
    id_of: &HashMap<u64, usize>,
    cluster: &mut Cluster,
    service: &PlanService,
    policy: &mut dyn Policy,
    cfg: &SimConfig,
    t: f64,
    acquired: &mut HashSet<(u32, usize, usize, usize)>,
    decisions: &mut Vec<f64>,
    obs: &Obs,
    plan: &ShardPlan,
) {
    let actions = {
        debug_assert!(
            indexes
                .iter()
                .flat_map(|ix| ix.queued.iter())
                .all(|&i| sjobs[i].state == JState::Queued),
            "queued index holds a non-queued job"
        );
        debug_assert!(
            indexes
                .iter()
                .flat_map(|ix| ix.active.iter())
                .all(|&i| sjobs[i].active()),
            "active index holds an inactive job"
        );
        // Merge round: per-shard index streams fold back into ascending
        // global (submission) order, so the policy sees exactly the
        // serial engine's queue and running vectors. Each job's view is
        // constructed exactly once on either path: the parallel path
        // builds per-shard fragments on the worker pool and *moves*
        // their views through the merge; the serial path skips the
        // fragments and builds the merged vectors directly from one walk
        // of the merged streams. `queued_homes` remembers each merged
        // queue slot's home shard so the per-shard queues below can lend
        // references instead of cloning.
        let live: usize = indexes
            .iter()
            .map(|ix| ix.queued.len() + ix.active.len())
            .sum();
        let parallel =
            plan.workers.threads() > 1 && indexes.len() > 1 && live >= PARALLEL_VIEW_CUTOFF;
        let (queued_homes, queued, running): (Vec<usize>, Vec<JobView>, Vec<JobView>) = if parallel
        {
            let mut frags: Vec<ViewFragment> = {
                let sjobs: &[SJob] = sjobs;
                plan.workers.run_all(
                    indexes
                        .iter()
                        .map(|ix| move || build_fragment(ix, sjobs))
                        .collect(),
                )
            };
            let _span = obs.span("sim.shard.merge");
            let queued_pairs = merge_by_index(
                frags
                    .iter_mut()
                    .map(|f| {
                        f.queued_idx
                            .iter()
                            .copied()
                            .zip(f.queued.drain(..))
                            .collect()
                    })
                    .collect(),
            );
            let running = merge_by_index(
                frags
                    .iter_mut()
                    .map(|f| {
                        f.active_idx
                            .iter()
                            .copied()
                            .zip(f.active.drain(..))
                            .collect()
                    })
                    .collect(),
            )
            .into_iter()
            .map(|(_, v)| v)
            .collect();
            let mut homes = Vec::with_capacity(queued_pairs.len());
            let mut queued = Vec::with_capacity(queued_pairs.len());
            for (i, v) in queued_pairs {
                homes.push(home_of[i]);
                queued.push(v);
            }
            (homes, queued, running)
        } else {
            let _span = obs.span("sim.shard.merge");
            let merged_q = merged_indices(indexes, |ix| ix.queued.iter().copied());
            let homes = merged_q.iter().map(|&(i, _)| home_of[i]).collect();
            let queued = merged_q.iter().map(|&(i, _)| job_view(&sjobs[i])).collect();
            let running = merged_indices(indexes, |ix| ix.active.iter().copied())
                .into_iter()
                .map(|(i, _)| job_view(&sjobs[i]))
                .collect();
            (homes, queued, running)
        };
        let pools = cluster.pool_stats();
        if obs.is_enabled() {
            obs.context(t, policy.name(), ev.label());
            obs.incr(&format!("sim.event.{}", ev.label()), 1);
            obs.gauge("sim.queue_depth", t, queued.len() as f64);
            obs.gauge("sim.running_jobs", t, running.len() as f64);
        }
        let view = SchedView {
            now_s: t,
            queued: &queued,
            running: &running,
            pools: &pools,
            service,
            obs: obs.clone(),
        };
        // Per-shard pre-pass: policies may warm caches concurrently but
        // must not change what `schedule` returns. The per-shard queues
        // lend references into the merged vector, routed by home shard;
        // merged order is ascending within each shard, so every shard
        // sees its jobs in arrival order.
        {
            let _span = obs.span("sim.shard.prepare");
            let mut split: Vec<Vec<&JobView>> = (0..indexes.len()).map(|_| Vec::new()).collect();
            for (&home, v) in queued_homes.iter().zip(queued.iter()) {
                split[home].push(v);
            }
            let shard_queues: Vec<ShardQueue<'_>> = split
                .into_iter()
                .enumerate()
                .map(|(shard, queued)| ShardQueue { shard, queued })
                .collect();
            policy.prepare_shards(&shard_queues, &view);
        }
        let started = std::time::Instant::now();
        let actions = {
            let _span = obs.span("sim.schedule");
            policy.schedule(ev, &view)
        };
        decisions.push(started.elapsed().as_secs_f64());
        obs.observe("sim.actions_per_pass", actions.len() as f64);
        actions
    };
    execute(
        &actions, sjobs, indexes, home_of, id_of, cluster, service, policy, cfg, t, acquired, obs,
    );
}

/// Executes scheduling actions — the serial engine's executor with index
/// membership routed to each job's home shard. Actions apply in the
/// policy's emission order, exactly as in the serial engine.
#[allow(clippy::too_many_arguments)]
fn execute(
    actions: &[Action],
    sjobs: &mut [SJob],
    indexes: &mut [EventIndex],
    home_of: &[usize],
    id_of: &HashMap<u64, usize>,
    cluster: &mut Cluster,
    service: &PlanService,
    policy: &dyn Policy,
    cfg: &SimConfig,
    t: f64,
    acquired: &mut HashSet<(u32, usize, usize, usize)>,
    obs: &Obs,
) {
    for action in actions {
        match *action {
            Action::Drop { job } => {
                let Some(&idx) = id_of.get(&job) else {
                    continue;
                };
                let j = &mut sjobs[idx];
                if matches!(j.state, JState::Finished | JState::Dropped) {
                    continue;
                }
                j.flush_run(t);
                j.flush_alloc(t);
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release dropped job");
                    obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                }
                j.state = JState::Dropped;
                obs.job_event(t, job, JobEventKind::Drop);
                indexes[home_of[idx]].retire(&mut sjobs[idx], idx);
            }
            Action::Evict { job } => {
                let Some(&idx) = id_of.get(&job) else {
                    continue;
                };
                let j = &mut sjobs[idx];
                if j.active() {
                    j.flush_run(t);
                    j.flush_alloc(t);
                    if let Some(alloc) = j.alloc.take() {
                        cluster.release(&alloc).expect("release evicted job");
                        obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                    }
                    j.state = JState::Queued;
                    j.restarts += 1;
                    j.opportunistic = false;
                    obs.job_event(
                        t,
                        job,
                        JobEventKind::Stop {
                            cause: StopCause::Preemption,
                            lost_iters: 0.0,
                        },
                    );
                    indexes[home_of[idx]].requeue(&mut sjobs[idx], idx);
                }
            }
            Action::Place {
                job,
                pool,
                gpus,
                opportunistic,
            } => {
                let Some(&idx) = id_of.get(&job) else {
                    continue;
                };
                let j = &mut sjobs[idx];
                if matches!(j.state, JState::Finished | JState::Dropped) {
                    continue;
                }
                // No-op placement: already running exactly like this.
                if j.active() && j.pool == pool.0 && j.gpus == gpus {
                    continue;
                }
                let run = match policy.plan_mode() {
                    PlanMode::Adaptive => service.adaptive_run(&j.spec.model, gpus, pool),
                    PlanMode::Cell => service.arena_run(&j.spec.model, gpus, pool),
                };
                let Some(run) = run else {
                    obs.incr("sim.place.infeasible", 1);
                    obs.decision(
                        Decision::requeue(job)
                            .on_shard(j.spec.requested_pool as u32)
                            .why("infeasible-placement"),
                    );
                    continue;
                };
                let was_active = j.active();
                let prev_grant = was_active.then_some((j.pool, j.gpus));
                j.flush_run(t);
                j.flush_alloc(t);
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release re-placed job");
                    obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                }
                match cluster.allocate(pool, gpus) {
                    Ok(alloc) => {
                        if was_active {
                            j.restarts += 1;
                        }
                        obs.alloc_event(t, job, pool.0, &alloc.node_gpus, true);
                        let key = (j.model_key, j.spec.model.global_batch, gpus, pool.0);
                        let first = acquired.insert(key);
                        let state_bytes = 8.0 * service.graph(&j.spec.model).total_param_bytes();
                        let ckpt = 2.0 * state_bytes / cfg.checkpoint_bw_bps;
                        let delay = cfg.restart_overhead_s
                            + ckpt
                            + if first { run.acquire_wall_s } else { 0.0 };
                        j.profiled = true;
                        j.alloc = Some(alloc);
                        j.pool = pool.0;
                        j.gpus = gpus;
                        j.opportunistic = opportunistic;
                        j.sps = run.throughput_sps;
                        j.iter_time = run.iter_time_s;
                        j.state = JState::Starting(t + delay);
                        j.alloc_since = Some(t);
                        obs.incr("sim.place.ok", 1);
                        obs.job_event(
                            t,
                            job,
                            JobEventKind::Place {
                                pool: pool.0,
                                gpus,
                                prev: prev_grant,
                                opportunistic,
                            },
                        );
                        indexes[home_of[idx]].place(&mut sjobs[idx], idx, t + delay);
                    }
                    Err(_) => {
                        // Capacity race: job returns to the queue.
                        if was_active {
                            j.restarts += 1;
                            obs.job_event(
                                t,
                                job,
                                JobEventKind::Stop {
                                    cause: StopCause::CapacityRace,
                                    lost_iters: 0.0,
                                },
                            );
                        }
                        j.state = JState::Queued;
                        obs.incr("sim.place.capacity_race", 1);
                        obs.decision(
                            Decision::requeue(job)
                                .on_shard(j.spec.requested_pool as u32)
                                .why("capacity-race"),
                        );
                        indexes[home_of[idx]].requeue(&mut sjobs[idx], idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::presets;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_perf::CostParams;
    use arena_sched::{ArenaPolicy, FcfsPolicy};

    fn tiny_trace() -> Vec<JobSpec> {
        let mk = |id: u64, submit: f64, size: f64, gpus: usize, pool: usize| JobSpec {
            id,
            name: format!("j{id}"),
            submit_s: submit,
            model: ModelConfig::new(ModelFamily::Bert, size, 256),
            iterations: 300,
            requested_gpus: gpus,
            requested_pool: pool,
            deadline_s: None,
        };
        vec![
            mk(0, 0.0, 0.76, 4, 0),
            mk(1, 100.0, 1.3, 8, 1),
            mk(2, 200.0, 0.76, 2, 0),
            mk(3, 2000.0, 1.3, 4, 1),
        ]
    }

    #[test]
    fn plan_folds_partitions_onto_shards() {
        let cluster = presets::physical_testbed();
        let plan = ShardPlan::per_pool(&cluster);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.shard_of_pool(0), 0);
        assert_eq!(plan.shard_of_pool(1), 1);
        let folded = plan.clone().with_shards(1);
        assert_eq!(folded.shard_of_pool(0), 0);
        assert_eq!(folded.shard_of_pool(1), 0);
        // More shards than partitions: trailing shards stay empty.
        let wide = plan.with_shards(8);
        assert_eq!(wide.shard_of_pool(1), 1);
    }

    #[test]
    fn sharded_run_matches_serial_engine() {
        let cluster = presets::physical_testbed();
        let jobs = tiny_trace();
        let cfg = SimConfig::new(48.0 * 3600.0);
        let serial = {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            crate::simulate(&cluster, &jobs, &mut FcfsPolicy::new(), &service, &cfg)
        };
        for shards in [1, 2, 4] {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            let plan = ShardPlan::per_pool(&cluster).with_shards(shards);
            let r = simulate_sharded(
                &cluster,
                &jobs,
                &mut FcfsPolicy::new(),
                &service,
                &cfg,
                &plan,
            );
            assert_eq!(r.metrics.avg_jct_s, serial.metrics.avg_jct_s, "{shards}");
            assert_eq!(r.timeline, serial.timeline, "{shards} shards");
            assert_eq!(r.raw_timeline, serial.raw_timeline, "{shards} shards");
        }
    }

    #[test]
    fn sharded_run_is_deterministic_across_worker_pools() {
        let cluster = presets::physical_testbed();
        let jobs = tiny_trace();
        let cfg = SimConfig::new(48.0 * 3600.0);
        let go = |workers: usize| {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            let plan = ShardPlan::per_pool(&cluster)
                .with_shards(2)
                .with_workers(WorkerPool::new(workers));
            simulate_sharded(
                &cluster,
                &jobs,
                &mut ArenaPolicy::new().with_worker_threads(workers),
                &service,
                &cfg,
                &plan,
            )
        };
        let seq = go(1);
        let par = go(4);
        assert_eq!(seq.metrics.avg_jct_s, par.metrics.avg_jct_s);
        assert_eq!(seq.timeline, par.timeline);
    }
}
