//! The sharded decision loop: per-partition scheduler shards with a
//! deterministic merge round.
//!
//! The cluster's pools are grouped into *partitions* by an
//! [`arena_cluster::PartitionMap`] (canonically one per pool); a
//! [`ShardPlan`] folds those partitions onto `S` *executor shards*, each
//! owning its own event heap and membership indexes over the jobs homed
//! to it (a job's home is its requested pool's partition, fixed at
//! arrival). Heavy per-shard work — building the policy's view fragments,
//! and the policy's own per-shard candidate prefetch via
//! [`arena_sched::Policy::prepare_shards`] — runs concurrently on an
//! [`arena_runtime::WorkerPool`].
//!
//! **The merge round is what keeps every observable output byte-identical
//! to the unsharded engine at any shard count.** Per-shard index sets
//! partition the global job table, and within a shard every set iterates
//! in ascending global job index (= submission order). Wherever the
//! serial engine walks jobs in ascending index and folds non-associative
//! state (floating-point throughput sums, `FaultLog` accumulation, obs
//! event order, cluster book mutations), the sharded loop first k-way
//! merges the per-shard index streams back into ascending global order
//! with [`arena_runtime::merge_by_index`] and then applies exactly the
//! serial fold. The executor shard count is thereby an execution knob
//! only; `tests/shard_equivalence.rs` pins the byte-identity at shard
//! counts 1/2/4/8, and `DESIGN.md` §12 spells out the argument.

use arena_cluster::{Cluster, PartitionMap};
use arena_obs::Obs;
use arena_runtime::{shards_from_env_or, WorkerPool};
use arena_sched::{PlanService, Policy};
use arena_trace::{FaultEvent, JobSpec};

use crate::engine::{SimConfig, SimResult};
use crate::incremental::Engine;

/// How a sharded run partitions the cluster and executes the shards.
///
/// The partition map is semantic (decision provenance records home
/// partitions); the executor shard count and worker pool are execution
/// knobs that must never show up in any observable output. Partitions are
/// folded onto executor shards round-robin (`partition % shards`), so
/// any shard count from 1 (fully serial decisions) to the partition
/// count (one shard per partition) is valid — as are larger counts,
/// which simply leave trailing shards empty.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    partition: PartitionMap,
    shards: usize,
    workers: WorkerPool,
}

impl ShardPlan {
    /// The canonical plan for a cluster: one partition per pool, one
    /// executor shard per partition, inline (sequential) workers.
    #[must_use]
    pub fn per_pool(cluster: &Cluster) -> Self {
        let partition = PartitionMap::for_cluster(cluster);
        let shards = partition.partitions();
        ShardPlan {
            partition,
            shards,
            workers: WorkerPool::sequential(),
        }
    }

    /// Reads `ARENA_SHARDS` for the executor shard count (defaulting to
    /// one shard per partition) and `ARENA_WORKER_THREADS` for the worker
    /// pool (defaulting to sequential).
    #[must_use]
    pub fn from_env(cluster: &Cluster) -> Self {
        let plan = Self::per_pool(cluster);
        let shards = shards_from_env_or(plan.partition.partitions());
        plan.with_shards(shards)
            .with_workers(WorkerPool::from_env_or(1))
    }

    /// Overrides the executor shard count (clamped to at least 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the partition map.
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionMap) -> Self {
        self.partition = partition;
        self
    }

    /// Overrides the worker pool running per-shard work.
    #[must_use]
    pub fn with_workers(mut self, workers: WorkerPool) -> Self {
        self.workers = workers;
        self
    }

    /// Executor shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The worker pool running per-shard work.
    #[must_use]
    pub fn workers(&self) -> &WorkerPool {
        &self.workers
    }

    /// The pool-to-partition map.
    #[must_use]
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// Executor shard owning `pool`: its partition folded round-robin
    /// onto the shard grid.
    #[must_use]
    pub fn shard_of_pool(&self, pool: usize) -> usize {
        self.partition.partition_of(pool) % self.shards
    }
}

/// [`crate::simulate`] on the sharded decision loop. Output is
/// byte-identical to the unsharded engine at any shard count.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::simulate`].
#[must_use]
pub fn simulate_sharded(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    plan: &ShardPlan,
) -> SimResult {
    simulate_sharded_with_faults(cluster, jobs, policy, service, cfg, &[], plan)
}

/// [`crate::simulate_traced`] on the sharded decision loop.
#[must_use]
pub fn simulate_sharded_traced(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    obs: &Obs,
    plan: &ShardPlan,
) -> SimResult {
    simulate_sharded_with_faults_traced(cluster, jobs, policy, service, cfg, &[], obs, plan)
}

/// [`crate::simulate_with_faults`] on the sharded decision loop.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::simulate_with_faults`].
#[must_use]
pub fn simulate_sharded_with_faults(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    faults: &[FaultEvent],
    plan: &ShardPlan,
) -> SimResult {
    simulate_sharded_with_faults_traced(
        cluster,
        jobs,
        policy,
        service,
        cfg,
        faults,
        &Obs::disabled(),
        plan,
    )
}

/// [`crate::simulate_with_faults_traced`] on the sharded decision loop —
/// now a thin batch driver over the incremental [`crate::Engine`]: load
/// every input up front, close the input stream, drain to completion.
/// Every other `simulate_sharded*` entry delegates here, and the server
/// drives the *same* engine one command at a time — so the batch/online
/// equivalence is held by construction plus `tests/server_e2e.rs`.
///
/// # Panics
///
/// Panics under the same conditions as
/// [`crate::simulate_with_faults_traced`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn simulate_sharded_with_faults_traced(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    faults: &[FaultEvent],
    obs: &Obs,
    plan: &ShardPlan,
) -> SimResult {
    assert!(
        jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s),
        "trace must be sorted by submission time"
    );
    assert!(
        faults.windows(2).all(|w| w[0].time_s <= w[1].time_s),
        "fault schedule must be sorted by time"
    );
    // One shard means the deterministic merge round has nothing to
    // merge: the sharded machinery (per-shard streams, the merge pass,
    // worker hand-off) is pure overhead there, and the serial engine is
    // byte-identical by the shard-equivalence suite. Route degenerate
    // plans straight through it; the crossover is documented in
    // DESIGN.md §12 and pinned by `sim/simulate_5000_jobs_faulted_
    // fcfs_shard1` in the baseline bench.
    if plan.shards() <= 1 {
        return crate::engine::simulate_with_faults_traced(
            cluster, jobs, policy, service, cfg, faults, obs,
        );
    }
    let mut engine = Engine::new(cluster, policy, service, cfg, obs, plan);
    // The asserts above are the historical batch validation; feed the
    // pre-asserted stream past the incremental checks so batch semantics
    // (e.g. tolerated duplicate ids) are preserved bit-for-bit.
    for job in jobs {
        engine.push_job_unchecked(job.clone());
    }
    for fault in faults {
        engine.push_fault_unchecked(fault.clone());
    }
    engine.close_input();
    engine.run_to_end();
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::presets;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_perf::CostParams;
    use arena_sched::{ArenaPolicy, FcfsPolicy};

    fn tiny_trace() -> Vec<JobSpec> {
        let mk = |id: u64, submit: f64, size: f64, gpus: usize, pool: usize| JobSpec {
            id,
            name: format!("j{id}"),
            submit_s: submit,
            model: ModelConfig::new(ModelFamily::Bert, size, 256),
            iterations: 300,
            requested_gpus: gpus,
            requested_pool: pool,
            deadline_s: None,
        };
        vec![
            mk(0, 0.0, 0.76, 4, 0),
            mk(1, 100.0, 1.3, 8, 1),
            mk(2, 200.0, 0.76, 2, 0),
            mk(3, 2000.0, 1.3, 4, 1),
        ]
    }

    #[test]
    fn plan_folds_partitions_onto_shards() {
        let cluster = presets::physical_testbed();
        let plan = ShardPlan::per_pool(&cluster);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.shard_of_pool(0), 0);
        assert_eq!(plan.shard_of_pool(1), 1);
        let folded = plan.clone().with_shards(1);
        assert_eq!(folded.shard_of_pool(0), 0);
        assert_eq!(folded.shard_of_pool(1), 0);
        // More shards than partitions: trailing shards stay empty.
        let wide = plan.with_shards(8);
        assert_eq!(wide.shard_of_pool(1), 1);
    }

    #[test]
    fn sharded_run_matches_serial_engine() {
        let cluster = presets::physical_testbed();
        let jobs = tiny_trace();
        let cfg = SimConfig::new(48.0 * 3600.0);
        let serial = {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            crate::simulate(&cluster, &jobs, &mut FcfsPolicy::new(), &service, &cfg)
        };
        for shards in [1, 2, 4] {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            let plan = ShardPlan::per_pool(&cluster).with_shards(shards);
            let r = simulate_sharded(
                &cluster,
                &jobs,
                &mut FcfsPolicy::new(),
                &service,
                &cfg,
                &plan,
            );
            assert_eq!(r.metrics.avg_jct_s, serial.metrics.avg_jct_s, "{shards}");
            assert_eq!(r.timeline, serial.timeline, "{shards} shards");
            assert_eq!(r.raw_timeline, serial.raw_timeline, "{shards} shards");
        }
    }

    #[test]
    fn telemetry_plane_is_invisible_in_output() {
        use arena_obs::MetricsRegistry;
        use std::sync::Arc;
        let cluster = presets::physical_testbed();
        let jobs = tiny_trace();
        let cfg = SimConfig::new(48.0 * 3600.0);
        let plan = ShardPlan::per_pool(&cluster).with_shards(2);
        let off = {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            simulate_sharded(
                &cluster,
                &jobs,
                &mut FcfsPolicy::new(),
                &service,
                &cfg,
                &plan,
            )
        };
        let registry = Arc::new(MetricsRegistry::new(64));
        let on = {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            let obs = Obs::metrics_only(Arc::clone(&registry));
            simulate_sharded_with_faults_traced(
                &cluster,
                &jobs,
                &mut FcfsPolicy::new(),
                &service,
                &cfg,
                &[],
                &obs,
                &plan,
            )
        };
        // The live plane must not perturb a single simulated byte.
        assert_eq!(on.metrics.avg_jct_s, off.metrics.avg_jct_s);
        assert_eq!(on.timeline, off.timeline);
        assert_eq!(on.raw_timeline, off.raw_timeline);
        // ... while the registry fills with per-stage / per-shard data.
        let counters = registry.counters_snapshot();
        assert!(counters["sim.event.arrival"] >= jobs.len() as u64);
        assert!(counters.contains_key("sim.place.ok"));
        let hists = registry.histograms_snapshot();
        assert!(hists["sim.stage.burst_seconds"].count > 0);
        let text = registry.expose();
        assert!(text.contains("sim_shard_heap_depth{shard=\"0\"}"));
        assert!(text.contains("sim_shard_queue_len{shard=\"1\"}"));
        assert!(text.contains("sim_estimator_estimate_hit_ratio"));
    }

    #[test]
    fn sharded_run_is_deterministic_across_worker_pools() {
        let cluster = presets::physical_testbed();
        let jobs = tiny_trace();
        let cfg = SimConfig::new(48.0 * 3600.0);
        let go = |workers: usize| {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            let plan = ShardPlan::per_pool(&cluster)
                .with_shards(2)
                .with_workers(WorkerPool::new(workers));
            simulate_sharded(
                &cluster,
                &jobs,
                &mut ArenaPolicy::new().with_worker_threads(workers),
                &service,
                &cfg,
                &plan,
            )
        };
        let seq = go(1);
        let par = go(4);
        assert_eq!(seq.metrics.avg_jct_s, par.metrics.avg_jct_s);
        assert_eq!(seq.timeline, par.timeline);
    }
}
