//! The pre-index reference engine: the event loop exactly as it was
//! before the event-indexed core landed, kept as the bitwise-equality
//! oracle for `tests/engine_equivalence.rs`.
//!
//! Every per-event pass here is a linear scan over the whole job table
//! and the plan-database key is a heap-allocated `String` tuple — the
//! O(jobs) shape the indexed engine replaces. Apart from storing job
//! specs behind `Arc` (required by the shared policy view types, and
//! invisible to the simulation), this file must stay a frozen copy of
//! the old `engine.rs`: any behavioural fix belongs in the real engine
//! first, with the equivalence suite deciding whether the oracle moves.
//!
//! Not part of the public API; hidden from docs on purpose.

use std::sync::Arc;

use arena_cluster::{Allocation, Cluster, GpuTypeId};
use arena_obs::{Decision, JobEventKind, Obs, StopCause};
use arena_sched::PlanService;
use arena_sched::{Action, JobView, PlacementView, PlanMode, Policy, SchedEvent, SchedView};
use arena_trace::{FaultEvent, FaultKind, JobSpec};

use crate::engine::{SimConfig, SimResult};
use crate::metrics::{aggregate, FaultLog, JobRecord};

#[derive(Debug, Clone, Copy, PartialEq)]
enum JState {
    Queued,
    Starting(f64),
    Running,
    Finished,
    Dropped,
}

struct SJob {
    spec: Arc<JobSpec>,
    state: JState,
    remaining: f64,
    alloc: Option<Allocation>,
    pool: usize,
    gpus: usize,
    opportunistic: bool,
    sps: f64,
    iter_time: f64,
    start_s: Option<f64>,
    finish_s: Option<f64>,
    restarts: u32,
    profiled: bool,
    since_ckpt_s: f64,
    recovering_since: Option<f64>,
    run_since: Option<f64>,
    alloc_since: Option<f64>,
    run_s: f64,
    productive_gpu_s: f64,
    allocated_gpu_s: f64,
}

impl SJob {
    fn active(&self) -> bool {
        matches!(self.state, JState::Starting(_) | JState::Running)
    }

    fn flush_run(&mut self, t: f64) {
        if let Some(since) = self.run_since.take() {
            let dt = t - since;
            self.run_s += dt;
            self.productive_gpu_s += dt * self.gpus as f64;
        }
    }

    fn flush_alloc(&mut self, t: f64) {
        if let Some(since) = self.alloc_since.take() {
            self.allocated_gpu_s += (t - since) * self.gpus as f64;
        }
    }
}

const EPS: f64 = 1e-6;

/// [`crate::simulate_with_faults`] on the reference loop.
#[must_use]
pub fn simulate_with_faults(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    faults: &[FaultEvent],
) -> SimResult {
    simulate_with_faults_traced(
        cluster,
        jobs,
        policy,
        service,
        cfg,
        faults,
        &Obs::disabled(),
    )
}

/// [`crate::simulate_with_faults_traced`] on the reference loop.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn simulate_with_faults_traced(
    cluster: &Cluster,
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    service: &PlanService,
    cfg: &SimConfig,
    faults: &[FaultEvent],
    obs: &Obs,
) -> SimResult {
    assert!(
        jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s),
        "trace must be sorted by submission time"
    );
    assert!(
        faults.windows(2).all(|w| w[0].time_s <= w[1].time_s),
        "fault schedule must be sorted by time"
    );
    let cluster_gpu_capacity = cluster.total_gpus();
    if obs.is_enabled() {
        let nodes: Vec<(usize, usize, usize)> = cluster
            .pool_ids()
            .flat_map(|pool| {
                let cap = cluster.spec(pool).gpus_per_node;
                (0..cluster.num_nodes(pool)).map(move |node| (pool.0, node, cap))
            })
            .collect();
        obs.timeline_nodes(&nodes);
    }
    let mut cluster = cluster.clone();
    let mut sjobs: Vec<SJob> = Vec::with_capacity(jobs.len());
    let mut acquired: std::collections::HashSet<(String, usize, usize, usize)> =
        std::collections::HashSet::new();
    let mut t = 0.0_f64;
    let mut arrival_idx = 0;
    let mut fault_idx = 0;
    let mut flog = FaultLog::default();
    let mut next_round = cfg.round_interval_s;
    let mut timeline: Vec<(f64, f64)> = Vec::new();
    let mut raw_timeline: Vec<(f64, f64)> = Vec::new();
    let mut decisions: Vec<f64> = Vec::new();

    loop {
        // Next event candidates: a full scan over the job table.
        let next_arrival = jobs.get(arrival_idx).map(|j| j.submit_s);
        let next_fault = faults.get(fault_idx).map_or(f64::INFINITY, |f| f.time_s);
        let next_job_event = sjobs
            .iter()
            .filter_map(|j| match j.state {
                JState::Starting(r) => Some(r),
                JState::Running => Some(t + j.remaining * j.iter_time),
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        let te = [
            next_arrival.unwrap_or(f64::INFINITY),
            next_fault,
            next_round,
            next_job_event,
            cfg.horizon_s,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);

        if !te.is_finite() {
            break;
        }

        // Advance running jobs to `te`.
        let dt = (te - t).max(0.0);
        for j in &mut sjobs {
            if j.state == JState::Running && j.iter_time > 0.0 {
                j.remaining = (j.remaining - dt / j.iter_time).max(0.0);
                flog.samples_processed += dt * j.sps;
                j.since_ckpt_s += dt;
                if cfg.checkpoint_interval_s > 0.0 && cfg.checkpoint_interval_s.is_finite() {
                    j.since_ckpt_s %= cfg.checkpoint_interval_s;
                }
            }
        }
        t = te;
        if t >= cfg.horizon_s - EPS {
            break;
        }

        // 1. Starting -> Running transitions due now.
        for j in &mut sjobs {
            if let JState::Starting(r) = j.state {
                if r <= t + EPS {
                    j.state = JState::Running;
                    j.start_s.get_or_insert(t);
                    j.since_ckpt_s = 0.0;
                    j.flush_alloc(t);
                    j.alloc_since = Some(t);
                    j.run_since = Some(t);
                    if let Some(since) = j.recovering_since.take() {
                        flog.recovery_times_s.push(t - since);
                    }
                    obs.job_event(t, j.spec.id, JobEventKind::RunStart);
                }
            }
        }

        // 2. Completions due now (free resources before anything else).
        let mut event: Option<SchedEvent> = None;
        for j in &mut sjobs {
            if j.state == JState::Running && j.remaining <= EPS {
                j.state = JState::Finished;
                j.finish_s = Some(t);
                j.flush_run(t);
                j.flush_alloc(t);
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release finished job");
                    obs.alloc_event(t, j.spec.id, alloc.pool.0, &alloc.node_gpus, false);
                }
                obs.job_event(t, j.spec.id, JobEventKind::Finish);
                event = Some(SchedEvent::Departure(j.spec.id));
            }
        }

        // 2b. Fault events due now.
        while fault_idx < faults.len() && faults[fault_idx].time_s <= t + EPS {
            let fault = &faults[fault_idx];
            fault_idx += 1;
            let pool = GpuTypeId(fault.pool);
            let ev = match fault.kind {
                FaultKind::Failure => {
                    cluster
                        .fail_node(pool, fault.node)
                        .expect("fault schedule names a node the cluster has");
                    obs.context(t, "engine", "node-failure");
                    obs.incr("sim.fault.failure", 1);
                    for j in &mut sjobs {
                        let hit = j.active()
                            && j.alloc
                                .as_ref()
                                .is_some_and(|a| a.uses_node(pool, fault.node));
                        if !hit {
                            continue;
                        }
                        let alloc = j.alloc.take().expect("active job holds an allocation");
                        cluster.release(&alloc).expect("release crashed job");
                        j.flush_run(t);
                        j.flush_alloc(t);
                        obs.alloc_event(t, j.spec.id, alloc.pool.0, &alloc.node_gpus, false);
                        let mut rollback = 0.0;
                        if j.state == JState::Running && j.iter_time > 0.0 {
                            let lost_iters = (j.since_ckpt_s / j.iter_time)
                                .min(j.spec.iterations as f64 - j.remaining);
                            j.remaining += lost_iters;
                            flog.samples_lost += lost_iters * j.iter_time * j.sps;
                            rollback = lost_iters;
                        }
                        obs.job_event(
                            t,
                            j.spec.id,
                            JobEventKind::Stop {
                                cause: StopCause::NodeFailure,
                                lost_iters: rollback,
                            },
                        );
                        j.state = JState::Queued;
                        j.restarts += 1;
                        j.opportunistic = false;
                        j.since_ckpt_s = 0.0;
                        j.recovering_since.get_or_insert(t);
                        flog.failure_evictions += 1;
                        obs.decision(
                            Decision::requeue(j.spec.id)
                                .on_shard(j.spec.requested_pool as u32)
                                .why("node-failure-evict"),
                        );
                    }
                    SchedEvent::NodeFailure {
                        pool,
                        node: fault.node,
                    }
                }
                FaultKind::Repair => {
                    cluster
                        .repair_node(pool, fault.node)
                        .expect("fault schedule names a node the cluster has");
                    obs.incr("sim.fault.repair", 1);
                    SchedEvent::NodeRepair {
                        pool,
                        node: fault.node,
                    }
                }
            };
            dispatch(
                ev,
                &mut sjobs,
                &mut cluster,
                service,
                policy,
                cfg,
                t,
                &mut acquired,
                &mut decisions,
                obs,
            );
        }

        // 3. Arrivals due now.
        while arrival_idx < jobs.len() && jobs[arrival_idx].submit_s <= t + EPS {
            let spec = Arc::new(jobs[arrival_idx].clone());
            arrival_idx += 1;
            let iters = spec.iterations as f64;
            let id = spec.id;
            sjobs.push(SJob {
                spec,
                state: JState::Queued,
                remaining: iters,
                alloc: None,
                pool: 0,
                gpus: 0,
                opportunistic: false,
                sps: 0.0,
                iter_time: 0.0,
                start_s: None,
                finish_s: None,
                restarts: 0,
                profiled: false,
                since_ckpt_s: 0.0,
                recovering_since: None,
                run_since: None,
                alloc_since: None,
                run_s: 0.0,
                productive_gpu_s: 0.0,
                allocated_gpu_s: 0.0,
            });
            obs.job_event(t, id, JobEventKind::Submit);
            event = Some(SchedEvent::Arrival(id));
        }

        // 4. Round tick.
        if next_round <= t + EPS {
            next_round += cfg.round_interval_s;
            event.get_or_insert(SchedEvent::Round);
        }

        // 5. Let the policy react.
        if let Some(ev) = event {
            dispatch(
                ev,
                &mut sjobs,
                &mut cluster,
                service,
                policy,
                cfg,
                t,
                &mut acquired,
                &mut decisions,
                obs,
            );
        }

        // 6. Sample the throughput timeline at round boundaries.
        if matches!(event, Some(SchedEvent::Round)) {
            timeline.push((t, normalized_throughput(&sjobs, service)));
            raw_timeline.push((t, raw_throughput(&sjobs)));
        }

        // Termination: no arrivals left, nothing queued or active.
        let live = sjobs.iter().any(|j| {
            matches!(
                j.state,
                JState::Queued | JState::Starting(_) | JState::Running
            )
        });
        if arrival_idx >= jobs.len() && !live {
            break;
        }
    }

    for j in &sjobs {
        if matches!(j.state, JState::Finished | JState::Dropped) {
            assert!(j.alloc.is_none(), "terminal job {} holds GPUs", j.spec.id);
        }
    }
    flog.elapsed_s = t.min(cfg.horizon_s);
    flog.gpu_capacity_s = cluster_gpu_capacity as f64 * flog.elapsed_s;
    let t_end = flog.elapsed_s;
    for j in &mut sjobs {
        j.flush_run(t_end);
        j.flush_alloc(t_end);
    }
    obs.timeline_close(t_end);

    let records: Vec<JobRecord> = sjobs
        .iter()
        .map(|j| JobRecord {
            id: j.spec.id,
            name: j.spec.name.clone(),
            submit_s: j.spec.submit_s,
            start_s: j.start_s,
            finish_s: j.finish_s,
            dropped: j.state == JState::Dropped,
            restarts: j.restarts,
            run_s: j.run_s,
            productive_gpu_s: j.productive_gpu_s,
            allocated_gpu_s: j.allocated_gpu_s,
            deadline_met: j
                .spec
                .deadline_s
                .map(|d| j.finish_s.is_some_and(|f| f <= d)),
        })
        .collect();
    let metrics = aggregate(&records, &timeline, &raw_timeline, &decisions, &flog);
    if obs.is_enabled() {
        let est = service.estimator_stats();
        obs.incr("estimator.estimate.hits", est.estimate_hits);
        obs.incr("estimator.estimate.misses", est.estimate_misses);
        obs.incr("estimator.profile.hits", est.profile_hits);
        obs.incr("estimator.profile.misses", est.profile_misses);
        obs.incr("estimator.table.hits", est.table_hits);
        obs.incr("estimator.table.misses", est.table_misses);
    }
    SimResult {
        policy: policy.name().to_string(),
        records,
        timeline,
        raw_timeline,
        metrics,
        trace: obs.report(),
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    ev: SchedEvent,
    sjobs: &mut [SJob],
    cluster: &mut Cluster,
    service: &PlanService,
    policy: &mut dyn Policy,
    cfg: &SimConfig,
    t: f64,
    acquired: &mut std::collections::HashSet<(String, usize, usize, usize)>,
    decisions: &mut Vec<f64>,
    obs: &Obs,
) {
    let actions = {
        let queued: Vec<JobView> = sjobs
            .iter()
            .filter(|j| j.state == JState::Queued)
            .map(job_view)
            .collect();
        let running: Vec<JobView> = sjobs.iter().filter(|j| j.active()).map(job_view).collect();
        let pools = cluster.pool_stats();
        if obs.is_enabled() {
            obs.context(t, policy.name(), ev.label());
            obs.incr(&format!("sim.event.{}", ev.label()), 1);
            obs.gauge("sim.queue_depth", t, queued.len() as f64);
            obs.gauge("sim.running_jobs", t, running.len() as f64);
        }
        let view = SchedView {
            now_s: t,
            queued: &queued,
            running: &running,
            pools: &pools,
            service,
            obs: obs.clone(),
        };
        let started = std::time::Instant::now();
        let actions = {
            let _span = obs.span("sim.schedule");
            policy.schedule(ev, &view)
        };
        decisions.push(started.elapsed().as_secs_f64());
        obs.observe("sim.actions_per_pass", actions.len() as f64);
        actions
    };
    execute(
        &actions, sjobs, cluster, service, policy, cfg, t, acquired, obs,
    );
}

fn job_view(j: &SJob) -> JobView {
    JobView {
        spec: Arc::clone(&j.spec),
        remaining_iters: j.remaining,
        #[allow(clippy::unnecessary_lazy_evaluations)]
        placement: j.active().then(|| PlacementView {
            pool: arena_cluster::GpuTypeId(j.pool),
            gpus: j.gpus,
            throughput_sps: j.sps,
            opportunistic: j.opportunistic,
        }),
    }
}

fn raw_throughput(sjobs: &[SJob]) -> f64 {
    sjobs
        .iter()
        .filter(|j| j.state == JState::Running)
        .map(|j| j.sps)
        .sum()
}

fn normalized_throughput(sjobs: &[SJob], service: &PlanService) -> f64 {
    sjobs
        .iter()
        .filter(|j| j.state == JState::Running)
        .map(|j| j.sps / service.ideal_sps(&j.spec))
        .sum()
}

#[allow(clippy::too_many_arguments)]
fn execute(
    actions: &[Action],
    sjobs: &mut [SJob],
    cluster: &mut Cluster,
    service: &PlanService,
    policy: &dyn Policy,
    cfg: &SimConfig,
    t: f64,
    acquired: &mut std::collections::HashSet<(String, usize, usize, usize)>,
    obs: &Obs,
) {
    for action in actions {
        match *action {
            Action::Drop { job } => {
                let Some(j) = sjobs.iter_mut().find(|j| j.spec.id == job) else {
                    continue;
                };
                if matches!(j.state, JState::Finished | JState::Dropped) {
                    continue;
                }
                j.flush_run(t);
                j.flush_alloc(t);
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release dropped job");
                    obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                }
                j.state = JState::Dropped;
                obs.job_event(t, job, JobEventKind::Drop);
            }
            Action::Evict { job } => {
                let Some(j) = sjobs.iter_mut().find(|j| j.spec.id == job) else {
                    continue;
                };
                if j.active() {
                    j.flush_run(t);
                    j.flush_alloc(t);
                    if let Some(alloc) = j.alloc.take() {
                        cluster.release(&alloc).expect("release evicted job");
                        obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                    }
                    j.state = JState::Queued;
                    j.restarts += 1;
                    j.opportunistic = false;
                    obs.job_event(
                        t,
                        job,
                        JobEventKind::Stop {
                            cause: StopCause::Preemption,
                            lost_iters: 0.0,
                        },
                    );
                }
            }
            Action::Place {
                job,
                pool,
                gpus,
                opportunistic,
            } => {
                let Some(j) = sjobs.iter_mut().find(|j| j.spec.id == job) else {
                    continue;
                };
                if matches!(j.state, JState::Finished | JState::Dropped) {
                    continue;
                }
                if j.active() && j.pool == pool.0 && j.gpus == gpus {
                    continue;
                }
                let run = match policy.plan_mode() {
                    PlanMode::Adaptive => service.adaptive_run(&j.spec.model, gpus, pool),
                    PlanMode::Cell => service.arena_run(&j.spec.model, gpus, pool),
                };
                let Some(run) = run else {
                    obs.incr("sim.place.infeasible", 1);
                    obs.decision(
                        Decision::requeue(job)
                            .on_shard(j.spec.requested_pool as u32)
                            .why("infeasible-placement"),
                    );
                    continue;
                };
                let was_active = j.active();
                let prev_grant = was_active.then_some((j.pool, j.gpus));
                j.flush_run(t);
                j.flush_alloc(t);
                if let Some(alloc) = j.alloc.take() {
                    cluster.release(&alloc).expect("release re-placed job");
                    obs.alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                }
                match cluster.allocate(pool, gpus) {
                    Ok(alloc) => {
                        if was_active {
                            j.restarts += 1;
                        }
                        obs.alloc_event(t, job, pool.0, &alloc.node_gpus, true);
                        let key = (j.spec.model.name(), j.spec.model.global_batch, gpus, pool.0);
                        let first = acquired.insert(key);
                        let state_bytes = 8.0 * service.graph(&j.spec.model).total_param_bytes();
                        let ckpt = 2.0 * state_bytes / cfg.checkpoint_bw_bps;
                        let delay = cfg.restart_overhead_s
                            + ckpt
                            + if first { run.acquire_wall_s } else { 0.0 };
                        j.profiled = true;
                        j.alloc = Some(alloc);
                        j.pool = pool.0;
                        j.gpus = gpus;
                        j.opportunistic = opportunistic;
                        j.sps = run.throughput_sps;
                        j.iter_time = run.iter_time_s;
                        j.state = JState::Starting(t + delay);
                        j.alloc_since = Some(t);
                        obs.incr("sim.place.ok", 1);
                        obs.job_event(
                            t,
                            job,
                            JobEventKind::Place {
                                pool: pool.0,
                                gpus,
                                prev: prev_grant,
                                opportunistic,
                            },
                        );
                    }
                    Err(_) => {
                        if was_active {
                            j.restarts += 1;
                            obs.job_event(
                                t,
                                job,
                                JobEventKind::Stop {
                                    cause: StopCause::CapacityRace,
                                    lost_iters: 0.0,
                                },
                            );
                        }
                        j.state = JState::Queued;
                        obs.incr("sim.place.capacity_race", 1);
                        obs.decision(
                            Decision::requeue(job)
                                .on_shard(j.spec.requested_pool as u32)
                                .why("capacity-race"),
                        );
                    }
                }
            }
        }
    }
}
