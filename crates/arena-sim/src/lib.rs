//! Discrete-event cluster simulator.
//!
//! The paper runs §8.3 on a physical 64-GPU testbed and everything larger
//! in a simulator validated against it (3.16% throughput error, §8.3).
//! This crate is that simulator: it owns time, the cluster books, job
//! lifecycles (queue → profile/explore → run → restart → finish), and
//! metric collection, and drives any [`arena_sched::Policy`]:
//!
//! * **Events**: job arrivals from a trace, job completions, and periodic
//!   scheduling rounds (5 minutes, §7).
//! * **Plan acquisition**: when the policy places a job the simulator
//!   prices the placement through the
//!   [`PlanService`](arena_sched::PlanService) — full adaptive
//!   exploration for baselines, Cell estimation + pruned tuning for
//!   Arena — and delays the job's progress by the restart overhead plus
//!   that acquisition wall-clock.
//! * **Metrics**: JCT / queueing statistics, a normalised
//!   cluster-throughput timeline, restart counts, deadline satisfaction
//!   and the policy's own decision latency (Fig. 21a).

pub mod engine;
mod heap;
pub mod incremental;
pub mod metrics;
#[doc(hidden)]
pub mod reference;
pub mod shard;
mod store;
pub mod stream;

pub use arena_obs::{
    Decision, DecisionKind, JobAccount, JobEventKind, JobState, MetricsRegistry, Obs, StopCause,
    Timeline, TraceReport, UtilSample,
};
pub use engine::{
    simulate, simulate_traced, simulate_with_faults, simulate_with_faults_traced, SimConfig,
    SimResult,
};
pub use incremental::{Engine, EngineState, InputError, JobPhase, JobStatus, PoolSnapshot};
pub use metrics::{record_fingerprint, DecisionStats, FaultLog, FoldedRecords, JobRecord, Metrics};
pub use shard::{
    simulate_sharded, simulate_sharded_traced, simulate_sharded_with_faults,
    simulate_sharded_with_faults_traced, ShardPlan,
};
pub use stream::{simulate_stream, simulate_stream_with_faults, StreamSummary};
