//! The incremental engine: the sharded decision loop of
//! [`crate::shard`], refactored from a run-to-completion function into a
//! stepwise API that a resident daemon can drive.
//!
//! [`Engine`] owns the whole simulation state — job table, per-shard
//! event heaps and membership indexes, cluster books, fault log,
//! timelines — and exposes the event loop one *burst* at a time. Inputs
//! (job submissions, fault events) arrive through [`Engine::submit`] /
//! [`Engine::inject_fault`] at any point; [`Engine::advance_before`]
//! processes every burst strictly earlier than a given instant so a
//! caller replaying a timestamped command stream can interleave
//! injection and advancement; [`Engine::close_input`] +
//! [`Engine::run_to_end`] drain the remainder exactly like the batch
//! loop; [`Engine::finish`] folds the tail (conformance asserts, fault
//! log close-out, metric aggregation) into a [`SimResult`].
//!
//! **Equivalence contract.** Feeding a sorted trace through
//! `submit`/`inject_fault` in any interleaving consistent with
//! `advance_before(event time)` — including all-up-front, which is
//! literally what [`crate::simulate_sharded_with_faults_traced`] now
//! does — produces byte-identical output to the historical batch loop.
//! The argument is the burst-window lemma: a batch burst at time `te`
//! consumes an arrival at `s` iff `s <= te + EPS`, i.e. `te >= s - EPS`;
//! `advance_before(s)` stops at exactly the first burst with
//! `te >= s - EPS`, so every burst it runs could not have seen the
//! arrival, and the first burst that could runs after injection.
//! `tests/server_e2e.rs` pins this across the batch/online boundary for
//! all five policies, with and without faults.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use arena_cluster::{Cluster, GpuTypeId};
use arena_estimator::Interner;
use arena_obs::{
    labeled, Counter, Decision, Gauge, Histogram, JobEventKind, MetricsRegistry, Obs, Span,
    StopCause,
};
use arena_runtime::merge_by_index;
use arena_sched::PlanService;
use arena_sched::{Action, JobView, PlanMode, Policy, SchedEvent, SchedView, ShardQueue};
use arena_trace::{FaultEvent, FaultKind, JobSpec};

use crate::engine::{job_view, EventIndex, JState, SJob, SimConfig, SimResult, EPS};
use crate::metrics::{aggregate, DecisionStats, FaultLog, FoldedRecords, JobRecord};
use crate::shard::ShardPlan;
use crate::store::JobStore;
use crate::stream::StreamSummary;
use serde::Serialize;

/// Below this many live jobs, per-shard view fragments are built inline:
/// a view build is an `Arc` bump plus a few scalar copies, so spawning
/// scoped workers (~tens of µs) only pays off for very deep queues. Both
/// paths produce identical fragments, so the cutoff is invisible in
/// output.
const PARALLEL_VIEW_CUTOFF: usize = 4096;

/// Why the engine refused an input. Rejection happens *before* the input
/// touches any engine state, so a caller can drop the bad input and keep
/// going — the server's reject-and-continue contract.
#[derive(Debug, Clone, PartialEq)]
pub enum InputError {
    /// Input stream already closed via [`Engine::close_input`].
    InputClosed,
    /// The timestamp is NaN or infinite.
    NonFiniteTime(f64),
    /// Submissions must be non-decreasing in `submit_s`.
    UnsortedSubmission {
        /// Watermark of the latest accepted submission.
        last_s: f64,
        /// The offending submission time.
        got_s: f64,
    },
    /// Fault events must be non-decreasing in `time_s`.
    UnsortedFault {
        /// Watermark of the latest accepted fault.
        last_s: f64,
        /// The offending fault time.
        got_s: f64,
    },
    /// The input is timestamped earlier than the engine clock: the
    /// burst that would consume it has already run.
    TimeRegression {
        /// Current engine clock.
        now_s: f64,
        /// The offending timestamp.
        got_s: f64,
    },
    /// A job with this id was already accepted.
    DuplicateJobId(u64),
    /// The fault names a pool/node the cluster does not have.
    NoSuchNode {
        /// Pool index from the fault event.
        pool: usize,
        /// Node index from the fault event.
        node: usize,
    },
    /// [`Engine::drop_job`] named a job the engine has never seen.
    UnknownJob(u64),
}

impl std::fmt::Display for InputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputError::InputClosed => write!(f, "input stream is closed"),
            InputError::NonFiniteTime(t) => write!(f, "non-finite timestamp {t}"),
            InputError::UnsortedSubmission { last_s, got_s } => {
                write!(f, "submission at {got_s}s after watermark {last_s}s")
            }
            InputError::UnsortedFault { last_s, got_s } => {
                write!(f, "fault at {got_s}s after watermark {last_s}s")
            }
            InputError::TimeRegression { now_s, got_s } => {
                write!(f, "input at {got_s}s but engine clock is {now_s}s")
            }
            InputError::DuplicateJobId(id) => write!(f, "duplicate job id {id}"),
            InputError::NoSuchNode { pool, node } => {
                write!(f, "no node {node} in pool {pool}")
            }
            InputError::UnknownJob(id) => write!(f, "unknown job id {id}"),
        }
    }
}

impl std::error::Error for InputError {}

/// A job's lifecycle phase as exposed in [`EngineState`] snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobPhase {
    /// Accepted but not yet due (submit time in the engine's future).
    Pending,
    /// Waiting in the scheduler queue.
    Queued,
    /// Holds GPUs, paying restart/profile overhead before running.
    Starting,
    /// Making progress.
    Running,
    /// Completed all iterations.
    Finished,
    /// Rejected or cancelled.
    Dropped,
}

impl JobPhase {
    /// Stable lowercase label (used by the server's JSON encoding).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobPhase::Pending => "pending",
            JobPhase::Queued => "queued",
            JobPhase::Starting => "starting",
            JobPhase::Running => "running",
            JobPhase::Finished => "finished",
            JobPhase::Dropped => "dropped",
        }
    }
}

/// One job's externally-visible status inside an [`EngineState`].
#[derive(Debug, Clone, Serialize)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Pool holding the job's GPUs (meaningful while Starting/Running).
    pub pool: usize,
    /// GPUs currently held (0 unless Starting/Running).
    pub gpus: usize,
    /// Restart count so far.
    pub restarts: u32,
    /// Submission time, seconds.
    pub submit_s: f64,
    /// First progress time, if any.
    pub start_s: Option<f64>,
    /// Completion time, if any.
    pub finish_s: Option<f64>,
    /// Iterations still to run.
    pub remaining_iters: f64,
}

/// Per-pool capacity books inside an [`EngineState`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PoolSnapshot {
    /// Pool index.
    pub pool: usize,
    /// Nameplate GPUs.
    pub total_gpus: usize,
    /// GPUs free on healthy nodes.
    pub free_gpus: usize,
    /// GPUs allocated to jobs.
    pub used_gpus: usize,
    /// GPUs on failed nodes.
    pub failed_gpus: usize,
}

/// An immutable, internally-consistent view of the engine between two
/// bursts — what the server publishes through its snapshot hub. Built by
/// the single writer thread, so every count is taken from the same
/// instant; the conservation invariants (`submitted` equals the sum of
/// the six phase counts, per-pool `free + used + failed == total`, and
/// `used == Σ gpus` over jobs holding GPUs) hold by construction and
/// are pinned by the concurrent-reader suite.
#[derive(Debug, Clone, Serialize)]
pub struct EngineState {
    /// Engine clock, seconds.
    pub now_s: f64,
    /// Jobs accepted (arrived or still pending).
    pub submitted: usize,
    /// Jobs accepted but not yet due.
    pub pending: usize,
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs holding GPUs but not yet running.
    pub starting: usize,
    /// Jobs making progress.
    pub running: usize,
    /// Jobs completed.
    pub finished: usize,
    /// Jobs dropped or cancelled.
    pub dropped: usize,
    /// Whether the input stream is closed.
    pub input_closed: bool,
    /// Whether the run has fully drained (no further bursts possible).
    pub drained: bool,
    /// Per-pool capacity books.
    pub pools: Vec<PoolSnapshot>,
    /// Per-job statuses, ascending submission order (arrived jobs
    /// first, then pending ones).
    pub jobs: Vec<JobStatus>,
}

/// Pre-registered live-telemetry handles for the decision loop
/// (DESIGN.md §14). Present only when the engine's [`Obs`] carries a
/// [`MetricsRegistry`]; every update is a handful of relaxed atomic
/// ops, so the plane stays on even inside the sharded hot path.
struct EngineTelemetry {
    /// Wall-clock of one full burst (advance + events + dispatch).
    burst: Histogram,
    /// Per-shard event-heap depth after each burst.
    heap_depth: Vec<Gauge>,
    /// Per-shard queued-job count after each burst.
    queue_len: Vec<Gauge>,
    /// Per-shard active (Starting/Running) job count after each burst.
    active_len: Vec<Gauge>,
    /// Per-shard candidate view-build latency (the parallel fan-out
    /// stage; shards observe from worker threads).
    candidate_gen: Vec<Histogram>,
    /// Estimator cache hit ratios, refreshed after every dispatch.
    est_hit_ratio: Gauge,
    est_profile_ratio: Gauge,
    est_table_ratio: Gauge,
    /// Cumulative wall-clock spent computing fresh estimates, seconds.
    est_seconds: Gauge,
    /// Per-stage decision-loop latency, same names the span plane uses
    /// so exposition and trace reports agree. Held as resolved handles:
    /// the per-event path must never pay a name-routed lookup.
    stage_merge: Histogram,
    stage_prepare: Histogram,
    stage_schedule: Histogram,
    stage_commit: Histogram,
    /// Actions emitted per scheduling pass.
    actions_per_pass: Histogram,
    /// Merged queue / running lengths at each dispatch.
    queue_depth: Gauge,
    running_jobs: Gauge,
    /// One counter per static event label (see [`event_counter_name`]).
    ev_arrival: Counter,
    ev_departure: Counter,
    ev_round: Counter,
    ev_failure: Counter,
    ev_repair: Counter,
}

impl EngineTelemetry {
    fn new(reg: &MetricsRegistry, shards: usize) -> Self {
        let shard_label = |base: &str, s: usize| labeled(base, &[("shard", &s.to_string())]);
        EngineTelemetry {
            burst: reg.histogram("sim.stage.burst_seconds"),
            heap_depth: (0..shards)
                .map(|s| reg.gauge(&shard_label("sim.shard.heap_depth", s)))
                .collect(),
            queue_len: (0..shards)
                .map(|s| reg.gauge(&shard_label("sim.shard.queue_len", s)))
                .collect(),
            active_len: (0..shards)
                .map(|s| reg.gauge(&shard_label("sim.shard.active_len", s)))
                .collect(),
            candidate_gen: (0..shards)
                .map(|s| reg.histogram(&shard_label("sim.stage.candidate_gen_seconds", s)))
                .collect(),
            est_hit_ratio: reg.gauge("sim.estimator.estimate_hit_ratio"),
            est_profile_ratio: reg.gauge("sim.estimator.profile_hit_ratio"),
            est_table_ratio: reg.gauge("sim.estimator.table_hit_ratio"),
            est_seconds: reg.gauge("sim.estimator.estimate_seconds"),
            stage_merge: reg.histogram("sim.shard.merge"),
            stage_prepare: reg.histogram("sim.shard.prepare"),
            stage_schedule: reg.histogram("sim.schedule"),
            stage_commit: reg.histogram("sim.commit"),
            actions_per_pass: reg.histogram("sim.actions_per_pass"),
            queue_depth: reg.gauge("sim.queue_depth"),
            running_jobs: reg.gauge("sim.running_jobs"),
            ev_arrival: reg.counter("sim.event.arrival"),
            ev_departure: reg.counter("sim.event.departure"),
            ev_round: reg.counter("sim.event.round"),
            ev_failure: reg.counter("sim.event.node-failure"),
            ev_repair: reg.counter("sim.event.node-repair"),
        }
    }

    /// The pre-resolved counter for a static event label, if any.
    fn event_counter(&self, label: &str) -> Option<&Counter> {
        match label {
            "arrival" => Some(&self.ev_arrival),
            "departure" => Some(&self.ev_departure),
            "round" => Some(&self.ev_round),
            "node-failure" => Some(&self.ev_failure),
            "node-repair" => Some(&self.ev_repair),
            _ => None,
        }
    }

    /// Refreshes the estimator gauges from a cache-stats snapshot.
    fn observe_estimator(&self, est: &arena_estimator::CacheStatsSnapshot) {
        let ratio = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        };
        self.est_hit_ratio
            .set(ratio(est.estimate_hits, est.estimate_misses));
        self.est_profile_ratio
            .set(ratio(est.profile_hits, est.profile_misses));
        self.est_table_ratio
            .set(ratio(est.table_hits, est.table_misses));
        self.est_seconds.set(est.estimate_ns as f64 / 1e9);
    }
}

/// Static counter name for a scheduling event label — same strings the
/// trace plane always used, minus the per-event `format!` allocation.
/// `None` for labels this table has never seen (callers fall back to
/// formatting, preserving the historical counter name exactly).
fn event_counter_name(label: &str) -> Option<&'static str> {
    match label {
        "arrival" => Some("sim.event.arrival"),
        "departure" => Some("sim.event.departure"),
        "round" => Some("sim.event.round"),
        "node-failure" => Some("sim.event.node-failure"),
        "node-repair" => Some("sim.event.node-repair"),
        _ => None,
    }
}

/// RAII stage timer for the decision loop. With live telemetry the
/// latency lands in a pre-resolved registry histogram (two relaxed
/// atomic adds, no name lookup); otherwise it falls back to the legacy
/// span plane, which is bitwise-identical to the pre-telemetry build.
enum StageGuard<'a> {
    /// Held only for its `Drop`: the span records itself when released.
    Span(#[allow(dead_code)] Span<'a>),
    Direct(Histogram, std::time::Instant),
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        if let StageGuard::Direct(hist, started) = self {
            hist.observe(started.elapsed().as_secs_f64());
        }
    }
}

/// The incremental sharded engine. See the module docs for the API
/// shape and the equivalence contract with the batch loop.
pub struct Engine<'a> {
    cluster: Cluster,
    cfg: SimConfig,
    plan: ShardPlan,
    obs: Obs,
    policy: &'a mut dyn Policy,
    service: &'a PlanService,
    sjobs: JobStore,
    id_of: HashMap<u64, usize>,
    seen_ids: HashSet<u64>,
    // One event heap + membership index per executor shard; a job lives
    // in the index of its home shard for its whole lifetime.
    indexes: Vec<EventIndex>,
    due: Vec<usize>,
    interner: Interner,
    acquired: HashSet<(u32, usize, usize, usize)>,
    t: f64,
    flog: FaultLog,
    next_round: f64,
    timeline: Vec<(f64, f64)>,
    raw_timeline: Vec<(f64, f64)>,
    decisions: Vec<f64>,
    pending_jobs: VecDeque<JobSpec>,
    pending_faults: VecDeque<FaultEvent>,
    last_submit_s: f64,
    last_fault_s: f64,
    input_open: bool,
    stopped: bool,
    cluster_gpu_capacity: usize,
    tele: Option<EngineTelemetry>,
    // Record-fold mode (streaming runs): terminal jobs fold into a
    // constant-memory aggregate and release their job-table slot at the
    // end of the burst that terminated them. Off by default — batch and
    // daemon runs keep every record for `finish`.
    fold_records: bool,
    folded: FoldedRecords,
    reclaim_pending: Vec<usize>,
    decision_stats: DecisionStats,
    peak_live_jobs: usize,
    // Scheduling passes since construction; clocks the memory-ledger
    // gauge refresh (see the dispatch tail).
    mem_clock: u64,
}

impl<'a> Engine<'a> {
    /// A fresh engine over a cluster, ready to accept inputs at `t = 0`.
    #[must_use]
    pub fn new(
        cluster: &Cluster,
        policy: &'a mut dyn Policy,
        service: &'a PlanService,
        cfg: &SimConfig,
        obs: &Obs,
        plan: &ShardPlan,
    ) -> Self {
        if obs.is_enabled() {
            let nodes: Vec<(usize, usize, usize)> = cluster
                .pool_ids()
                .flat_map(|pool| {
                    let cap = cluster.spec(pool).gpus_per_node;
                    (0..cluster.num_nodes(pool)).map(move |node| (pool.0, node, cap))
                })
                .collect();
            obs.timeline_nodes(&nodes);
        }
        Engine {
            cluster: cluster.clone(),
            cfg: cfg.clone(),
            plan: plan.clone(),
            obs: obs.clone(),
            policy,
            service,
            sjobs: JobStore::new(),
            id_of: HashMap::new(),
            seen_ids: HashSet::new(),
            indexes: (0..plan.shards()).map(|_| EventIndex::default()).collect(),
            due: Vec::new(),
            interner: Interner::new(),
            acquired: HashSet::new(),
            t: 0.0,
            flog: FaultLog::default(),
            next_round: cfg.round_interval_s,
            timeline: Vec::new(),
            raw_timeline: Vec::new(),
            decisions: Vec::new(),
            pending_jobs: VecDeque::new(),
            pending_faults: VecDeque::new(),
            last_submit_s: f64::NEG_INFINITY,
            last_fault_s: f64::NEG_INFINITY,
            input_open: true,
            stopped: false,
            cluster_gpu_capacity: cluster.total_gpus(),
            tele: obs
                .metrics()
                .map(|reg| EngineTelemetry::new(reg, plan.shards())),
            fold_records: false,
            folded: FoldedRecords::default(),
            reclaim_pending: Vec::new(),
            decision_stats: DecisionStats::default(),
            peak_live_jobs: 0,
            mem_clock: 0,
        }
    }

    /// Switches the engine into record-fold mode for streaming runs:
    /// terminal jobs fold into a [`FoldedRecords`] aggregate and their
    /// job-table slot is reclaimed at the end of the burst that
    /// terminated them, so resident memory follows the *live* job count
    /// instead of the trace length. The duplicate-id ledger is skipped
    /// too (streaming drivers feed pre-validated sources), which means
    /// [`Engine::submit`] / [`Engine::drop_job`] lose duplicate/unknown
    /// detection — fold mode is for [`crate::stream`] drivers, not the
    /// daemon. Finish such a run with [`Engine::finish_stream`].
    ///
    /// Folding is invisible in scheduling output: a reclaimed job is
    /// terminal, so every engine path already treated it as inert
    /// (stale heap entries, id-miss `continue`s in the executor).
    ///
    /// # Panics
    ///
    /// Panics if any job was already submitted.
    pub fn enable_record_fold(&mut self) {
        assert!(
            self.sjobs.is_empty() && self.pending_jobs.is_empty(),
            "record-fold mode must be enabled before any submission"
        );
        self.fold_records = true;
    }

    /// Engine clock, seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Whether the run has fully drained: no further burst can fire.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.stopped
    }

    /// Whether the input stream is still open.
    #[must_use]
    pub fn input_open(&self) -> bool {
        self.input_open
    }

    /// Queues a job submission. Validation happens before any state is
    /// touched; on `Err` the engine is exactly as it was.
    ///
    /// # Errors
    ///
    /// Rejects closed input, non-finite/unsorted/past timestamps and
    /// duplicate job ids.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), InputError> {
        if !self.input_open {
            return Err(InputError::InputClosed);
        }
        if !spec.submit_s.is_finite() {
            return Err(InputError::NonFiniteTime(spec.submit_s));
        }
        if spec.submit_s < self.last_submit_s {
            return Err(InputError::UnsortedSubmission {
                last_s: self.last_submit_s,
                got_s: spec.submit_s,
            });
        }
        if spec.submit_s < self.t - EPS {
            return Err(InputError::TimeRegression {
                now_s: self.t,
                got_s: spec.submit_s,
            });
        }
        if self.seen_ids.contains(&spec.id) {
            return Err(InputError::DuplicateJobId(spec.id));
        }
        self.push_job_unchecked(spec);
        Ok(())
    }

    /// Queues a fault event.
    ///
    /// # Errors
    ///
    /// Rejects closed input, non-finite/unsorted/past timestamps and
    /// pool/node coordinates the cluster does not have.
    pub fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), InputError> {
        if !self.input_open {
            return Err(InputError::InputClosed);
        }
        if !fault.time_s.is_finite() {
            return Err(InputError::NonFiniteTime(fault.time_s));
        }
        if fault.time_s < self.last_fault_s {
            return Err(InputError::UnsortedFault {
                last_s: self.last_fault_s,
                got_s: fault.time_s,
            });
        }
        if fault.time_s < self.t - EPS {
            return Err(InputError::TimeRegression {
                now_s: self.t,
                got_s: fault.time_s,
            });
        }
        if fault.pool >= self.cluster.num_pools()
            || fault.node >= self.cluster.num_nodes(GpuTypeId(fault.pool))
        {
            return Err(InputError::NoSuchNode {
                pool: fault.pool,
                node: fault.node,
            });
        }
        self.push_fault_unchecked(fault);
        Ok(())
    }

    /// Enqueues a job bypassing validation — the batch wrappers feed
    /// pre-asserted traces through this to preserve their historical
    /// semantics (including tolerated duplicate ids) bit-for-bit.
    pub(crate) fn push_job_unchecked(&mut self, spec: JobSpec) {
        self.last_submit_s = self.last_submit_s.max(spec.submit_s);
        if !self.fold_records {
            // The ledger is O(trace length); fold-mode sources are
            // pre-validated, so streaming runs skip it.
            self.seen_ids.insert(spec.id);
        }
        self.pending_jobs.push_back(spec);
    }

    /// Enqueues a fault bypassing validation (batch wrappers).
    pub(crate) fn push_fault_unchecked(&mut self, fault: FaultEvent) {
        self.last_fault_s = self.last_fault_s.max(fault.time_s);
        self.pending_faults.push_back(fault);
    }

    /// Declares the input stream complete: the drain loop may now
    /// terminate once the queues empty. Idempotent.
    pub fn close_input(&mut self) {
        self.input_open = false;
    }

    /// Cancels a job online: releases its GPUs, marks it dropped and
    /// lets the policy react to the departure. This is the engine-level
    /// mirror of [`arena_sched::Action::Drop`] for operator-initiated
    /// completions; it has no batch counterpart and therefore no place
    /// in the equivalence fingerprint.
    ///
    /// # Errors
    ///
    /// Rejects ids the engine has never accepted.
    pub fn drop_job(&mut self, id: u64) -> Result<(), InputError> {
        if !self.seen_ids.contains(&id) {
            return Err(InputError::UnknownJob(id));
        }
        if let Some(&idx) = self.id_of.get(&id) {
            let t = self.t;
            let j = &mut self.sjobs[idx];
            if matches!(j.state, JState::Finished | JState::Dropped) {
                return Ok(());
            }
            j.flush_run(t);
            j.flush_alloc(t);
            if let Some(alloc) = j.alloc.take() {
                self.cluster.release(&alloc).expect("release cancelled job");
                self.obs
                    .alloc_event(t, id, alloc.pool.0, &alloc.node_gpus, false);
            }
            j.state = JState::Dropped;
            self.obs.job_event(t, id, JobEventKind::Drop);
            let home = self.sjobs[idx].home;
            self.indexes[home].retire(&mut self.sjobs[idx], idx);
            if self.fold_records {
                self.reclaim_pending.push(idx);
            }
            self.dispatch(SchedEvent::Departure(id));
            self.process_reclaims();
        } else {
            // Accepted but not yet arrived: cancel it in the input queue.
            self.pending_jobs.retain(|s| s.id != id);
        }
        Ok(())
    }

    /// Runs bursts while the next burst time is strictly earlier than
    /// `s - EPS` — i.e. while the burst could not consume an input
    /// timestamped at `s` (see the module docs for the lemma). A caller
    /// replaying a timestamped command stream calls
    /// `advance_before(cmd.time)` then injects the command.
    pub fn advance_before(&mut self, s: f64) {
        while !self.stopped {
            let te = self.peek_te();
            if !te.is_finite() {
                self.stopped = true;
                break;
            }
            if te >= s - EPS {
                break;
            }
            self.burst_timed(te);
        }
    }

    /// Runs one burst. Returns `false` once the run has drained.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let te = self.peek_te();
        if !te.is_finite() {
            self.stopped = true;
            return false;
        }
        self.burst_timed(te);
        !self.stopped
    }

    /// Drains every remaining burst (the batch loop's `loop`).
    pub fn run_to_end(&mut self) {
        while self.step() {}
    }

    /// Builds an immutable status snapshot of the current state.
    #[must_use]
    pub fn state(&self) -> EngineState {
        let mut jobs: Vec<JobStatus> =
            Vec::with_capacity(self.sjobs.live() + self.pending_jobs.len());
        let (mut queued, mut starting, mut running, mut finished, mut dropped) = (0, 0, 0, 0, 0);
        for (_, j) in self.sjobs.iter() {
            let phase = match j.state {
                JState::Queued => {
                    queued += 1;
                    JobPhase::Queued
                }
                JState::Starting(_) => {
                    starting += 1;
                    JobPhase::Starting
                }
                JState::Running => {
                    running += 1;
                    JobPhase::Running
                }
                JState::Finished => {
                    finished += 1;
                    JobPhase::Finished
                }
                JState::Dropped => {
                    dropped += 1;
                    JobPhase::Dropped
                }
            };
            let holds = j.active();
            jobs.push(JobStatus {
                id: j.spec.id,
                name: j.spec.name.clone(),
                phase,
                pool: if holds { j.pool } else { 0 },
                gpus: if holds { j.gpus } else { 0 },
                restarts: j.restarts,
                submit_s: j.spec.submit_s,
                start_s: j.start_s,
                finish_s: j.finish_s,
                remaining_iters: j.remaining,
            });
        }
        for spec in &self.pending_jobs {
            jobs.push(JobStatus {
                id: spec.id,
                name: spec.name.clone(),
                phase: JobPhase::Pending,
                pool: 0,
                gpus: 0,
                restarts: 0,
                submit_s: spec.submit_s,
                start_s: None,
                finish_s: None,
                remaining_iters: spec.iterations as f64,
            });
        }
        let pools = self
            .cluster
            .pool_stats()
            .iter()
            .map(|p| PoolSnapshot {
                pool: p.id.0,
                total_gpus: p.total_gpus,
                free_gpus: p.free_gpus,
                used_gpus: p.total_gpus - p.free_gpus - p.failed_gpus,
                failed_gpus: p.failed_gpus,
            })
            .collect();
        // Folded (reclaimed) jobs keep counting toward the totals so the
        // conservation invariant survives record-fold mode; their
        // per-job statuses are gone by design.
        EngineState {
            now_s: self.t,
            submitted: self.sjobs.live() + self.folded.jobs as usize + self.pending_jobs.len(),
            pending: self.pending_jobs.len(),
            queued,
            starting,
            running,
            finished: finished + self.folded.finished as usize,
            dropped: dropped + self.folded.dropped as usize,
            input_closed: !self.input_open,
            drained: self.stopped,
            pools,
            jobs,
        }
    }

    /// Folds the drained run into a [`SimResult`] — the batch loop's
    /// tail: conformance asserts, fault-log close-out, open-segment
    /// flushes, metric aggregation, estimator counter export.
    ///
    /// # Panics
    ///
    /// Panics if a terminal job still holds GPUs (engine invariant), or
    /// if the engine runs in record-fold mode (use
    /// [`Engine::finish_stream`], which returns the folded aggregate
    /// instead of per-job records).
    #[must_use]
    pub fn finish(mut self) -> SimResult {
        assert!(
            !self.fold_records,
            "record-fold runs finish via finish_stream"
        );
        // Conformance: terminal jobs hold no GPUs, and each home shard's
        // membership indexes agree with the job table.
        for (i, j) in self.sjobs.iter() {
            if matches!(j.state, JState::Finished | JState::Dropped) {
                assert!(j.alloc.is_none(), "terminal job {} holds GPUs", j.spec.id);
            }
            debug_assert_eq!(
                self.indexes[j.home].queued.contains(&i),
                j.state == JState::Queued,
                "queued index out of sync for job {}",
                j.spec.id
            );
            debug_assert_eq!(
                self.indexes[j.home].active.contains(&i),
                j.active(),
                "active index out of sync for job {}",
                j.spec.id
            );
        }
        self.flog.elapsed_s = self.t.min(self.cfg.horizon_s);
        self.flog.gpu_capacity_s = self.cluster_gpu_capacity as f64 * self.flog.elapsed_s;
        let t_end = self.flog.elapsed_s;
        for (_, j) in self.sjobs.iter_mut() {
            j.flush_run(t_end);
            j.flush_alloc(t_end);
        }
        self.obs.timeline_close(t_end);

        let records: Vec<JobRecord> = self.sjobs.iter().map(|(_, j)| job_record(j)).collect();
        let metrics = aggregate(
            &records,
            &self.timeline,
            &self.raw_timeline,
            &self.decisions,
            &self.flog,
        );
        if self.obs.is_enabled() {
            let est = self.service.estimator_stats();
            self.obs.incr("estimator.estimate.hits", est.estimate_hits);
            self.obs
                .incr("estimator.estimate.misses", est.estimate_misses);
            self.obs.incr("estimator.profile.hits", est.profile_hits);
            self.obs
                .incr("estimator.profile.misses", est.profile_misses);
            self.obs.incr("estimator.table.hits", est.table_hits);
            self.obs.incr("estimator.table.misses", est.table_misses);
        }
        SimResult {
            policy: self.policy.name().to_string(),
            records,
            timeline: self.timeline,
            raw_timeline: self.raw_timeline,
            metrics,
            trace: self.obs.report(),
        }
    }

    /// Folds a drained record-fold run into a [`StreamSummary`] — the
    /// batch tail of [`Engine::finish`] without ever materialising the
    /// record vector: residual (non-terminal) jobs flush their open
    /// segments at `t_end` and fold like everything that already
    /// terminated mid-run.
    ///
    /// # Panics
    ///
    /// Panics unless [`Engine::enable_record_fold`] was called, or if a
    /// terminal job still holds GPUs (engine invariant).
    #[must_use]
    pub fn finish_stream(mut self) -> StreamSummary {
        assert!(
            self.fold_records,
            "finish_stream requires record-fold mode (enable_record_fold)"
        );
        self.process_reclaims();
        self.flog.elapsed_s = self.t.min(self.cfg.horizon_s);
        self.flog.gpu_capacity_s = self.cluster_gpu_capacity as f64 * self.flog.elapsed_s;
        let t_end = self.flog.elapsed_s;
        let residual: Vec<usize> = self.sjobs.iter().map(|(i, _)| i).collect();
        for idx in residual {
            let j = &mut self.sjobs[idx];
            if matches!(j.state, JState::Finished | JState::Dropped) {
                assert!(j.alloc.is_none(), "terminal job {} holds GPUs", j.spec.id);
            }
            j.flush_run(t_end);
            j.flush_alloc(t_end);
            let rec = job_record(&self.sjobs[idx]);
            self.folded.fold(&rec);
            self.sjobs.reclaim(idx);
        }
        self.obs.timeline_close(t_end);
        let folded = self.folded;
        let flog = &self.flog;
        StreamSummary {
            policy: self.policy.name().to_string(),
            fingerprint: folded.fingerprint(),
            jobs: folded,
            decisions: self.decision_stats,
            // Fault-log derived rates, mirroring `aggregate`.
            goodput_sps: if flog.elapsed_s > 0.0 {
                (flog.samples_processed - flog.samples_lost).max(0.0) / flog.elapsed_s
            } else {
                0.0
            },
            work_lost_frac: if flog.samples_processed > 0.0 {
                flog.samples_lost / flog.samples_processed
            } else {
                0.0
            },
            failure_evictions: flog.failure_evictions,
            mean_recovery_s: if flog.recovery_times_s.is_empty() {
                0.0
            } else {
                flog.recovery_times_s.iter().sum::<f64>() / flog.recovery_times_s.len() as f64
            },
            cluster_util_frac: if flog.gpu_capacity_s > 0.0 {
                folded.productive_gpu_s / flog.gpu_capacity_s
            } else {
                0.0
            },
            elapsed_s: flog.elapsed_s,
            peak_live_jobs: self.peak_live_jobs,
            timeline: self.timeline,
            raw_timeline: self.raw_timeline,
        }
    }

    /// Folds every job queued for reclamation into the aggregate and
    /// frees its slot. Deferred to burst end (and input-command
    /// boundaries) so action lists and event handling inside the
    /// terminating burst still resolve the job by id — between the
    /// terminal transition and the reclaim, every path already treats
    /// the job as inert.
    fn process_reclaims(&mut self) {
        while let Some(idx) = self.reclaim_pending.pop() {
            let rec = {
                let j = &self.sjobs[idx];
                debug_assert!(
                    matches!(j.state, JState::Finished | JState::Dropped),
                    "reclaiming a non-terminal job"
                );
                job_record(j)
            };
            // A tolerated duplicate id maps to its first slot; only the
            // mapping owner removes it.
            if self.id_of.get(&rec.id).is_some_and(|&m| m == idx) {
                self.id_of.remove(&rec.id);
            }
            self.folded.fold(&rec);
            self.sjobs.reclaim(idx);
        }
    }

    /// Heap maintenance plus the next-event computation. The per-shard
    /// heaps partition the serial engine's single heap, and `f64::min`
    /// ignores NaN consistently, so the fold over per-shard fresh minima
    /// is bitwise the global fresh minimum. Maintenance (lazy-deletion
    /// compaction) is purely a memory cap: running it more often than
    /// the batch loop did is invisible in output.
    fn peek_te(&mut self) -> f64 {
        let sjobs = &self.sjobs;
        for index in &mut self.indexes {
            if index.heap.len() > 1024 && index.heap.len() > 8 * (index.active.len() + 1) {
                let EventIndex { heap, .. } = index;
                heap.compact(|job, generation| sjobs.is_fresh(job, generation));
            }
        }
        let next_arrival = self.pending_jobs.front().map(|j| j.submit_s);
        let next_fault = self
            .pending_faults
            .front()
            .map_or(f64::INFINITY, |f| f.time_s);
        let next_job_event = self
            .indexes
            .iter_mut()
            .map(|ix| {
                ix.heap
                    .next_fresh(|job, generation| sjobs.is_fresh(job, generation))
            })
            .fold(f64::INFINITY, f64::min);
        [
            next_arrival.unwrap_or(f64::INFINITY),
            next_fault,
            self.next_round,
            next_job_event,
            self.cfg.horizon_s,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min)
    }

    /// [`Engine::burst`] wrapped in live telemetry: burst wall-clock
    /// plus per-shard heap-depth/queue-length gauges. A no-op wrapper
    /// when no registry is attached — the batch path pays nothing.
    fn burst_timed(&mut self, te: f64) {
        let timer = self
            .tele
            .as_ref()
            .map(|tele| (tele.burst.clone(), std::time::Instant::now()));
        self.burst(te);
        if let Some((hist, started)) = timer {
            hist.observe(started.elapsed().as_secs_f64());
            if let Some(tele) = &self.tele {
                for (s, ix) in self.indexes.iter().enumerate() {
                    tele.heap_depth[s].set(ix.heap.len() as f64);
                    tele.queue_len[s].set(ix.queued.len() as f64);
                    tele.active_len[s].set(ix.active.len() as f64);
                }
            }
        }
    }

    /// One burst at `te`: the body of the batch loop, verbatim.
    #[allow(clippy::too_many_lines)]
    fn burst(&mut self, te: f64) {
        // Advance running jobs to `te`. Merge round: the per-shard active
        // sets are walked merged back into ascending global index, so
        // `flog.samples_processed` accumulates with the same operands in
        // the same order as the serial engine's single-set walk.
        let dt = (te - self.t).max(0.0);
        if dt > 0.0 {
            for (i, ()) in merged_indices(&self.indexes, |ix| ix.active.iter().copied()) {
                let j = &mut self.sjobs[i];
                if j.state == JState::Running && j.iter_time > 0.0 {
                    j.remaining = (j.remaining - dt / j.iter_time).max(0.0);
                    self.flog.samples_processed += dt * j.sps;
                    j.since_ckpt_s += dt;
                    if self.cfg.checkpoint_interval_s > 0.0
                        && self.cfg.checkpoint_interval_s.is_finite()
                    {
                        j.since_ckpt_s %= self.cfg.checkpoint_interval_s;
                    }
                    debug_assert!(j.last_update_s <= te, "job advanced backwards");
                    j.last_update_s = te;
                    j.generation += 1;
                    let (home, generation, wake) =
                        (j.home, j.generation, te + j.remaining * j.iter_time);
                    self.indexes[home].heap.push(wake, generation, i);
                }
            }
        }
        self.t = te;
        let t = te;
        if t >= self.cfg.horizon_s - EPS {
            self.stopped = true;
            return;
        }

        // 1. Starting -> Running transitions due now, in merged global
        // order (recovery-time pushes and RunStart events keep the serial
        // order).
        for (i, ()) in merged_indices(&self.indexes, |ix| ix.active.iter().copied()) {
            let j = &mut self.sjobs[i];
            if let JState::Starting(r) = j.state {
                if r <= t + EPS {
                    j.state = JState::Running;
                    j.start_s.get_or_insert(t);
                    j.since_ckpt_s = 0.0;
                    j.flush_alloc(t);
                    j.alloc_since = Some(t);
                    j.run_since = Some(t);
                    j.last_update_s = t;
                    if let Some(since) = j.recovering_since.take() {
                        self.flog.recovery_times_s.push(t - since);
                    }
                    self.obs.job_event(t, j.spec.id, JobEventKind::RunStart);
                    j.generation += 1;
                    let (home, generation, wake) =
                        (j.home, j.generation, t + j.remaining * j.iter_time);
                    self.indexes[home].heap.push(wake, generation, i);
                }
            }
        }

        // 2. Completions due now (free resources before anything else),
        // merged so cluster releases and Finish events apply in global
        // order.
        let mut event: Option<SchedEvent> = None;
        self.due.clear();
        self.due.extend(
            merged_indices(&self.indexes, |ix| ix.active.iter().copied())
                .into_iter()
                .map(|(i, ())| i)
                .filter(|&i| {
                    let j = &self.sjobs[i];
                    j.state == JState::Running && j.remaining <= EPS
                }),
        );
        let due = std::mem::take(&mut self.due);
        for &i in &due {
            let j = &mut self.sjobs[i];
            j.state = JState::Finished;
            j.finish_s = Some(t);
            j.flush_run(t);
            j.flush_alloc(t);
            if let Some(alloc) = j.alloc.take() {
                self.cluster.release(&alloc).expect("release finished job");
                self.obs
                    .alloc_event(t, j.spec.id, alloc.pool.0, &alloc.node_gpus, false);
            }
            self.obs.job_event(t, j.spec.id, JobEventKind::Finish);
            event = Some(SchedEvent::Departure(j.spec.id));
            let home = self.sjobs[i].home;
            self.indexes[home].retire(&mut self.sjobs[i], i);
            if self.fold_records {
                self.reclaim_pending.push(i);
            }
        }
        self.due = due;

        // 2b. Fault events due now. Victims landing mid-merge-round are
        // detected per shard and applied in merged global order, so
        // requeue provenance is identical to the serial engine's.
        while self
            .pending_faults
            .front()
            .is_some_and(|f| f.time_s <= t + EPS)
        {
            let fault = self.pending_faults.pop_front().expect("front checked");
            let pool = GpuTypeId(fault.pool);
            let ev = match fault.kind {
                FaultKind::Failure => {
                    self.cluster
                        .fail_node(pool, fault.node)
                        .expect("fault schedule names a node the cluster has");
                    self.obs.context(t, "engine", "node-failure");
                    self.obs.incr("sim.fault.failure", 1);
                    self.due.clear();
                    self.due.extend(
                        merged_indices(&self.indexes, |ix| ix.active.iter().copied())
                            .into_iter()
                            .map(|(i, ())| i)
                            .filter(|&i| {
                                self.sjobs[i]
                                    .alloc
                                    .as_ref()
                                    .is_some_and(|a| a.uses_node(pool, fault.node))
                            }),
                    );
                    let due = std::mem::take(&mut self.due);
                    for &i in &due {
                        let j = &mut self.sjobs[i];
                        let alloc = j.alloc.take().expect("active job holds an allocation");
                        self.cluster.release(&alloc).expect("release crashed job");
                        j.flush_run(t);
                        j.flush_alloc(t);
                        self.obs
                            .alloc_event(t, j.spec.id, alloc.pool.0, &alloc.node_gpus, false);
                        let mut rollback = 0.0;
                        if j.state == JState::Running && j.iter_time > 0.0 {
                            let lost_iters = (j.since_ckpt_s / j.iter_time)
                                .min(j.spec.iterations as f64 - j.remaining);
                            j.remaining += lost_iters;
                            self.flog.samples_lost += lost_iters * j.iter_time * j.sps;
                            rollback = lost_iters;
                        }
                        self.obs.job_event(
                            t,
                            j.spec.id,
                            JobEventKind::Stop {
                                cause: StopCause::NodeFailure,
                                lost_iters: rollback,
                            },
                        );
                        j.state = JState::Queued;
                        j.restarts += 1;
                        j.opportunistic = false;
                        j.since_ckpt_s = 0.0;
                        j.recovering_since.get_or_insert(t);
                        self.flog.failure_evictions += 1;
                        self.obs.decision(
                            Decision::requeue(j.spec.id)
                                .on_shard(j.spec.requested_pool as u32)
                                .why("node-failure-evict"),
                        );
                        let home = self.sjobs[i].home;
                        self.indexes[home].requeue(&mut self.sjobs[i], i);
                    }
                    self.due = due;
                    SchedEvent::NodeFailure {
                        pool,
                        node: fault.node,
                    }
                }
                FaultKind::Repair => {
                    self.cluster
                        .repair_node(pool, fault.node)
                        .expect("fault schedule names a node the cluster has");
                    self.obs.incr("sim.fault.repair", 1);
                    SchedEvent::NodeRepair {
                        pool,
                        node: fault.node,
                    }
                }
            };
            self.dispatch(ev);
        }

        // 3. Arrivals due now, homed onto their shard.
        while self
            .pending_jobs
            .front()
            .is_some_and(|s| s.submit_s <= t + EPS)
        {
            let spec = Arc::new(self.pending_jobs.pop_front().expect("front checked"));
            let iters = spec.iterations as f64;
            let id = spec.id;
            let home = self.plan.shard_of_pool(spec.requested_pool);
            let model_key = self.interner.intern(&spec.model.name());
            let idx = self.sjobs.push(SJob {
                spec,
                model_key,
                state: JState::Queued,
                generation: 0,
                last_update_s: t,
                remaining: iters,
                alloc: None,
                home,
                pool: 0,
                gpus: 0,
                opportunistic: false,
                sps: 0.0,
                iter_time: 0.0,
                start_s: None,
                finish_s: None,
                restarts: 0,
                profiled: false,
                since_ckpt_s: 0.0,
                recovering_since: None,
                run_since: None,
                alloc_since: None,
                run_s: 0.0,
                productive_gpu_s: 0.0,
                allocated_gpu_s: 0.0,
            });
            self.id_of.entry(id).or_insert(idx);
            self.indexes[home].queued.insert(idx);
            self.obs.job_event(t, id, JobEventKind::Submit);
            event = Some(SchedEvent::Arrival(id));
        }

        // 4. Round tick.
        if self.next_round <= t + EPS {
            self.next_round += self.cfg.round_interval_s;
            event.get_or_insert(SchedEvent::Round);
        }

        // 5. Let the policy react.
        if let Some(ev) = event {
            self.dispatch(ev);
        }

        // 6. Sample the throughput timeline at round boundaries: both
        // sums fold the merged (ascending global index) running stream,
        // reproducing the serial accumulation order bitwise.
        if matches!(event, Some(SchedEvent::Round)) {
            let running: Vec<usize> = merged_indices(&self.indexes, |ix| ix.active.iter().copied())
                .into_iter()
                .map(|(i, ())| i)
                .filter(|&i| self.sjobs[i].state == JState::Running)
                .collect();
            let norm: f64 = running
                .iter()
                .map(|&i| self.sjobs[i].sps / self.service.ideal_sps(&self.sjobs[i].spec))
                .sum();
            let raw: f64 = running.iter().map(|&i| self.sjobs[i].sps).sum();
            self.timeline.push((t, norm));
            self.raw_timeline.push((t, raw));
        }

        // Termination: input closed, no arrivals left, nothing queued or
        // active.
        if !self.input_open
            && self.pending_jobs.is_empty()
            && self
                .indexes
                .iter()
                .all(|ix| ix.queued.is_empty() && ix.active.is_empty())
        {
            self.stopped = true;
        }

        // Burst end: record the live high-water mark (the streaming
        // memory-model's working-set measure) and return terminal jobs'
        // slots in record-fold mode.
        let live: usize = self
            .indexes
            .iter()
            .map(|ix| ix.queued.len() + ix.active.len())
            .sum();
        self.peak_live_jobs = self.peak_live_jobs.max(live);
        if !self.reclaim_pending.is_empty() {
            self.process_reclaims();
        }
    }

    /// Builds the policy's view shard-by-shard, merges the fragments,
    /// runs the policy's per-shard pre-pass and scheduling pass, and
    /// executes the actions.
    fn dispatch(&mut self, ev: SchedEvent) {
        let t = self.t;
        let service = self.service;
        let actions = {
            debug_assert!(
                self.indexes
                    .iter()
                    .flat_map(|ix| ix.queued.iter())
                    .all(|&i| self.sjobs[i].state == JState::Queued),
                "queued index holds a non-queued job"
            );
            debug_assert!(
                self.indexes
                    .iter()
                    .flat_map(|ix| ix.active.iter())
                    .all(|&i| self.sjobs[i].active()),
                "active index holds an inactive job"
            );
            // Merge round: per-shard index streams fold back into ascending
            // global (submission) order, so the policy sees exactly the
            // serial engine's queue and running vectors. Each job's view is
            // constructed exactly once on either path: the parallel path
            // builds per-shard fragments on the worker pool and *moves*
            // their views through the merge; the serial path skips the
            // fragments and builds the merged vectors directly from one walk
            // of the merged streams. `queued_homes` remembers each merged
            // queue slot's home shard so the per-shard queues below can lend
            // references instead of cloning.
            let live: usize = self
                .indexes
                .iter()
                .map(|ix| ix.queued.len() + ix.active.len())
                .sum();
            let parallel = self.plan.workers().threads() > 1
                && self.indexes.len() > 1
                && live >= PARALLEL_VIEW_CUTOFF;
            let (queued_homes, queued, running): (Vec<usize>, Vec<JobView>, Vec<JobView>) =
                if parallel {
                    let mut frags: Vec<ViewFragment> = {
                        let sjobs: &JobStore = &self.sjobs;
                        // Per-shard candidate-gen latency: each worker
                        // times its own fragment build into that
                        // shard's histogram (atomics, thread-safe).
                        let hists: Vec<Option<Histogram>> = match &self.tele {
                            Some(tele) => {
                                tele.candidate_gen.iter().map(|h| Some(h.clone())).collect()
                            }
                            None => self.indexes.iter().map(|_| None).collect(),
                        };
                        self.plan.workers().run_all(
                            self.indexes
                                .iter()
                                .zip(hists)
                                .map(|(ix, hist)| {
                                    move || {
                                        let started =
                                            hist.as_ref().map(|_| std::time::Instant::now());
                                        let frag = build_fragment(ix, sjobs);
                                        if let (Some(h), Some(s)) = (hist, started) {
                                            h.observe(s.elapsed().as_secs_f64());
                                        }
                                        frag
                                    }
                                })
                                .collect(),
                        )
                    };
                    let _merge = match &self.tele {
                        Some(tele) => {
                            StageGuard::Direct(tele.stage_merge.clone(), std::time::Instant::now())
                        }
                        None => StageGuard::Span(self.obs.span("sim.shard.merge")),
                    };
                    let queued_pairs = merge_by_index(
                        frags
                            .iter_mut()
                            .map(|f| {
                                f.queued_idx
                                    .iter()
                                    .copied()
                                    .zip(f.queued.drain(..))
                                    .collect()
                            })
                            .collect(),
                    );
                    let running = merge_by_index(
                        frags
                            .iter_mut()
                            .map(|f| {
                                f.active_idx
                                    .iter()
                                    .copied()
                                    .zip(f.active.drain(..))
                                    .collect()
                            })
                            .collect(),
                    )
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                    let mut homes = Vec::with_capacity(queued_pairs.len());
                    let mut queued = Vec::with_capacity(queued_pairs.len());
                    for (i, v) in queued_pairs {
                        homes.push(self.sjobs[i].home);
                        queued.push(v);
                    }
                    (homes, queued, running)
                } else {
                    let _merge = match &self.tele {
                        Some(tele) => {
                            StageGuard::Direct(tele.stage_merge.clone(), std::time::Instant::now())
                        }
                        None => StageGuard::Span(self.obs.span("sim.shard.merge")),
                    };
                    let merged_q = merged_indices(&self.indexes, |ix| ix.queued.iter().copied());
                    let homes = merged_q.iter().map(|&(i, _)| self.sjobs[i].home).collect();
                    let queued = merged_q
                        .iter()
                        .map(|&(i, _)| job_view(&self.sjobs[i]))
                        .collect();
                    let running = merged_indices(&self.indexes, |ix| ix.active.iter().copied())
                        .into_iter()
                        .map(|(i, _)| job_view(&self.sjobs[i]))
                        .collect();
                    (homes, queued, running)
                };
            let pools = self.cluster.pool_stats();
            if self.obs.is_enabled() {
                self.obs.context(t, self.policy.name(), ev.label());
            }
            if let Some(tele) = &self.tele {
                // Registry fast path: pre-resolved handles, no name
                // routing. `tele` is Some exactly when metrics are on.
                match tele.event_counter(ev.label()) {
                    Some(c) => c.incr(1),
                    None => self.obs.incr(&format!("sim.event.{}", ev.label()), 1),
                }
                tele.queue_depth.set(queued.len() as f64);
                tele.running_jobs.set(running.len() as f64);
            } else if self.obs.is_enabled() {
                match event_counter_name(ev.label()) {
                    Some(name) => self.obs.incr(name, 1),
                    None => self.obs.incr(&format!("sim.event.{}", ev.label()), 1),
                }
                self.obs.gauge("sim.queue_depth", t, queued.len() as f64);
                self.obs.gauge("sim.running_jobs", t, running.len() as f64);
            }
            let view = SchedView {
                now_s: t,
                queued: &queued,
                running: &running,
                pools: &pools,
                service,
                obs: self.obs.clone(),
            };
            // Per-shard pre-pass: policies may warm caches concurrently but
            // must not change what `schedule` returns. The per-shard queues
            // lend references into the merged vector, routed by home shard;
            // merged order is ascending within each shard, so every shard
            // sees its jobs in arrival order.
            {
                let _prepare = match &self.tele {
                    Some(tele) => {
                        StageGuard::Direct(tele.stage_prepare.clone(), std::time::Instant::now())
                    }
                    None => StageGuard::Span(self.obs.span("sim.shard.prepare")),
                };
                let mut split: Vec<Vec<&JobView>> =
                    (0..self.indexes.len()).map(|_| Vec::new()).collect();
                for (&home, v) in queued_homes.iter().zip(queued.iter()) {
                    split[home].push(v);
                }
                let shard_queues: Vec<ShardQueue<'_>> = split
                    .into_iter()
                    .enumerate()
                    .map(|(shard, queued)| ShardQueue { shard, queued })
                    .collect();
                self.policy.prepare_shards(&shard_queues, &view);
            }
            let started = std::time::Instant::now();
            let actions = if self.tele.is_some() {
                // Registry path reuses the decision-latency clock below
                // instead of opening a span (one Instant pair saved).
                self.policy.schedule(ev, &view)
            } else {
                let _span = self.obs.span("sim.schedule");
                self.policy.schedule(ev, &view)
            };
            let decision_s = started.elapsed().as_secs_f64();
            self.decision_stats.observe(decision_s);
            if !self.fold_records {
                // The per-decision vector only feeds `finish`'s mean;
                // fold mode keeps the running stats instead.
                self.decisions.push(decision_s);
            }
            if let Some(tele) = &self.tele {
                tele.stage_schedule.observe(decision_s);
                tele.actions_per_pass.observe(actions.len() as f64);
            } else {
                self.obs
                    .observe("sim.actions_per_pass", actions.len() as f64);
            }
            actions
        };
        {
            // Commit stage: action execution against the cluster books.
            // The histogram handle is cloned out of `tele` first so the
            // mutable borrow for `execute` stays free.
            match self.tele.as_ref().map(|t| t.stage_commit.clone()) {
                Some(hist) => {
                    let started = std::time::Instant::now();
                    self.execute(&actions);
                    hist.observe(started.elapsed().as_secs_f64());
                }
                None => {
                    let obs = self.obs.clone();
                    let _span = obs.span("sim.commit");
                    self.execute(&actions);
                }
            }
        }
        if let Some(tele) = &self.tele {
            tele.observe_estimator(&self.service.estimator_stats());
        }
        // Memory-ledger gauges refresh on a 1-in-64 pass clock (first
        // pass included, so a scrape right after the first submit
        // already carries the series): the section walk allocates its
        // report, so riding every burst showed up on the loaded
        // telemetry bench, while this cadence keeps a daemon's
        // `query metrics` scrape at most a few dozen decisions stale.
        // Registry-less runs skip the ledger walk entirely.
        let publish_mem = self.mem_clock.is_multiple_of(64);
        self.mem_clock += 1;
        if !publish_mem {
            return;
        }
        if let Some(reg) = self.obs.metrics() {
            let mut sections = self.service.estimator().mem_report();
            sections.extend(self.service.mem_report());
            arena_obs::publish_mem_sections(reg, &sections);
        }
    }

    /// Executes scheduling actions — the serial engine's executor with
    /// index membership routed to each job's home shard. Actions apply
    /// in the policy's emission order, exactly as in the serial engine.
    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, actions: &[Action]) {
        let t = self.t;
        for action in actions {
            match *action {
                Action::Drop { job } => {
                    let Some(&idx) = self.id_of.get(&job) else {
                        continue;
                    };
                    let j = &mut self.sjobs[idx];
                    if matches!(j.state, JState::Finished | JState::Dropped) {
                        continue;
                    }
                    j.flush_run(t);
                    j.flush_alloc(t);
                    if let Some(alloc) = j.alloc.take() {
                        self.cluster.release(&alloc).expect("release dropped job");
                        self.obs
                            .alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                    }
                    j.state = JState::Dropped;
                    self.obs.job_event(t, job, JobEventKind::Drop);
                    let home = self.sjobs[idx].home;
                    self.indexes[home].retire(&mut self.sjobs[idx], idx);
                    if self.fold_records {
                        self.reclaim_pending.push(idx);
                    }
                }
                Action::Evict { job } => {
                    let Some(&idx) = self.id_of.get(&job) else {
                        continue;
                    };
                    let j = &mut self.sjobs[idx];
                    if j.active() {
                        j.flush_run(t);
                        j.flush_alloc(t);
                        if let Some(alloc) = j.alloc.take() {
                            self.cluster.release(&alloc).expect("release evicted job");
                            self.obs
                                .alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                        }
                        j.state = JState::Queued;
                        j.restarts += 1;
                        j.opportunistic = false;
                        self.obs.job_event(
                            t,
                            job,
                            JobEventKind::Stop {
                                cause: StopCause::Preemption,
                                lost_iters: 0.0,
                            },
                        );
                        let home = self.sjobs[idx].home;
                        self.indexes[home].requeue(&mut self.sjobs[idx], idx);
                    }
                }
                Action::Place {
                    job,
                    pool,
                    gpus,
                    opportunistic,
                } => {
                    let Some(&idx) = self.id_of.get(&job) else {
                        continue;
                    };
                    let j = &mut self.sjobs[idx];
                    if matches!(j.state, JState::Finished | JState::Dropped) {
                        continue;
                    }
                    // No-op placement: already running exactly like this.
                    if j.active() && j.pool == pool.0 && j.gpus == gpus {
                        continue;
                    }
                    let run = match self.policy.plan_mode() {
                        PlanMode::Adaptive => self.service.adaptive_run(&j.spec.model, gpus, pool),
                        PlanMode::Cell => self.service.arena_run(&j.spec.model, gpus, pool),
                    };
                    let Some(run) = run else {
                        self.obs.incr("sim.place.infeasible", 1);
                        self.obs.decision(
                            Decision::requeue(job)
                                .on_shard(j.spec.requested_pool as u32)
                                .why("infeasible-placement"),
                        );
                        continue;
                    };
                    let was_active = j.active();
                    let prev_grant = was_active.then_some((j.pool, j.gpus));
                    j.flush_run(t);
                    j.flush_alloc(t);
                    if let Some(alloc) = j.alloc.take() {
                        self.cluster.release(&alloc).expect("release re-placed job");
                        self.obs
                            .alloc_event(t, job, alloc.pool.0, &alloc.node_gpus, false);
                    }
                    match self.cluster.allocate(pool, gpus) {
                        Ok(alloc) => {
                            if was_active {
                                j.restarts += 1;
                            }
                            self.obs.alloc_event(t, job, pool.0, &alloc.node_gpus, true);
                            let key = (j.model_key, j.spec.model.global_batch, gpus, pool.0);
                            let first = self.acquired.insert(key);
                            let state_bytes =
                                8.0 * self.service.graph(&j.spec.model).total_param_bytes();
                            let ckpt = 2.0 * state_bytes / self.cfg.checkpoint_bw_bps;
                            let delay = self.cfg.restart_overhead_s
                                + ckpt
                                + if first { run.acquire_wall_s } else { 0.0 };
                            j.profiled = true;
                            j.alloc = Some(alloc);
                            j.pool = pool.0;
                            j.gpus = gpus;
                            j.opportunistic = opportunistic;
                            j.sps = run.throughput_sps;
                            j.iter_time = run.iter_time_s;
                            j.state = JState::Starting(t + delay);
                            j.alloc_since = Some(t);
                            self.obs.incr("sim.place.ok", 1);
                            self.obs.job_event(
                                t,
                                job,
                                JobEventKind::Place {
                                    pool: pool.0,
                                    gpus,
                                    prev: prev_grant,
                                    opportunistic,
                                },
                            );
                            let home = self.sjobs[idx].home;
                            self.indexes[home].place(&mut self.sjobs[idx], idx, t + delay);
                        }
                        Err(_) => {
                            // Capacity race: job returns to the queue.
                            if was_active {
                                j.restarts += 1;
                                self.obs.job_event(
                                    t,
                                    job,
                                    JobEventKind::Stop {
                                        cause: StopCause::CapacityRace,
                                        lost_iters: 0.0,
                                    },
                                );
                            }
                            j.state = JState::Queued;
                            self.obs.incr("sim.place.capacity_race", 1);
                            self.obs.decision(
                                Decision::requeue(job)
                                    .on_shard(j.spec.requested_pool as u32)
                                    .why("capacity-race"),
                            );
                            let home = self.sjobs[idx].home;
                            self.indexes[home].requeue(&mut self.sjobs[idx], idx);
                        }
                    }
                }
            }
        }
    }
}

/// K-way merges one per-shard index stream back into ascending global
/// (submission) order — the engine-side merge round. The per-shard sets
/// hold disjoint global indices, each iterated ascending, so the merge is
/// exactly the order a single global set would iterate in.
fn merged_indices<'a, I>(
    indexes: &'a [EventIndex],
    stream: impl Fn(&'a EventIndex) -> I,
) -> Vec<(usize, ())>
where
    I: Iterator<Item = usize> + 'a,
{
    if indexes.len() == 1 {
        return stream(&indexes[0]).map(|i| (i, ())).collect();
    }
    merge_by_index(
        indexes
            .iter()
            .map(|ix| stream(ix).map(|i| (i, ())).collect())
            .collect(),
    )
}

/// Per-shard queued/running view fragments: global indices (ascending)
/// alongside the matching views, kept as parallel vectors so the merge
/// round can move the views into the merged vectors without cloning.
struct ViewFragment {
    queued_idx: Vec<usize>,
    queued: Vec<JobView>,
    active_idx: Vec<usize>,
    active: Vec<JobView>,
}

fn build_fragment(ix: &EventIndex, sjobs: &JobStore) -> ViewFragment {
    ViewFragment {
        queued_idx: ix.queued.iter().copied().collect(),
        queued: ix.queued.iter().map(|&i| job_view(&sjobs[i])).collect(),
        active_idx: ix.active.iter().copied().collect(),
        active: ix.active.iter().map(|&i| job_view(&sjobs[i])).collect(),
    }
}

/// The final record of one job, read off its (flushed) engine state.
/// `finish` builds these for every job after the end-of-run flush;
/// record-fold mode builds them at the terminal transition, where the
/// flushes have already run and every field is final — the two paths
/// produce bitwise-identical records.
fn job_record(j: &SJob) -> JobRecord {
    JobRecord {
        id: j.spec.id,
        name: j.spec.name.clone(),
        submit_s: j.spec.submit_s,
        start_s: j.start_s,
        finish_s: j.finish_s,
        dropped: j.state == JState::Dropped,
        restarts: j.restarts,
        run_s: j.run_s,
        productive_gpu_s: j.productive_gpu_s,
        allocated_gpu_s: j.allocated_gpu_s,
        deadline_met: j
            .spec
            .deadline_s
            .map(|d| j.finish_s.is_some_and(|f| f <= d)),
    }
}
