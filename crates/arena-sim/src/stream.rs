//! Streaming simulation drivers: million-job traces in bounded memory.
//!
//! The batch drivers in [`crate::shard`] materialise the whole trace
//! (`&[JobSpec]`), load it into the engine's pending queue, and keep a
//! terminal `SJob` plus a `JobRecord` for every job to the end of the
//! run — all O(trace length). The drivers here hold none of that:
//!
//! * arrivals are *pulled* one at a time from an
//!   [`arena_trace::TraceSource`] and injected through the burst-window
//!   seam ([`crate::Engine::advance_before`]), so the pending queue
//!   holds at most one undelivered job;
//! * the engine runs in record-fold mode
//!   ([`crate::Engine::enable_record_fold`]): a terminal job folds into
//!   a constant-memory [`FoldedRecords`] aggregate and its job-table
//!   slot is reclaimed, so resident memory follows the *live* job count
//!   (offered load × service time), not the trace length.
//!
//! **Equivalence.** The interleaving is exactly the one the burst-window
//! lemma licenses (see [`crate::incremental`] module docs), and folding
//! only ever touches jobs every engine path already treats as inert —
//! so a streaming run schedules byte-identically to the batch driver on
//! the same trace. The summary's [`StreamSummary::fingerprint`] is an
//! order-free hash over per-job records, comparable against
//! [`crate::record_fingerprint`] of the batch run's record vector;
//! `tests/streaming_identity.rs` pins the identity across policies,
//! shard counts and fault schedules.

use arena_cluster::Cluster;
use arena_obs::Obs;
use arena_sched::{PlanService, Policy};
use arena_trace::{FaultEvent, TraceSource};
use serde::Serialize;

use crate::engine::SimConfig;
use crate::incremental::Engine;
use crate::metrics::{DecisionStats, FoldedRecords};
use crate::shard::ShardPlan;

/// What a streaming run yields instead of a [`crate::SimResult`]:
/// constant-memory aggregates plus the round-sampled throughput
/// timelines (bounded by horizon / round interval, not job count).
#[derive(Debug, Clone, Serialize)]
pub struct StreamSummary {
    /// The policy's display name.
    pub policy: String,
    /// Folded per-job aggregates (counts, JCT/queue sums, GPU-seconds).
    pub jobs: FoldedRecords,
    /// Order-free fingerprint of the folded record multiset — equals
    /// [`crate::record_fingerprint`] over a batch run's records iff the
    /// two runs produced identical per-job outcomes.
    pub fingerprint: u64,
    /// Scheduler decision-latency fold (count / total / max).
    pub decisions: DecisionStats,
    /// Useful samples per second over the run (processed minus
    /// failure-lost work).
    pub goodput_sps: f64,
    /// Fraction of processed samples re-done after failure rollbacks.
    pub work_lost_frac: f64,
    /// Jobs evicted by node failures.
    pub failure_evictions: usize,
    /// Mean failure-to-running-again wall-clock, seconds.
    pub mean_recovery_s: f64,
    /// Productive GPU-seconds over nameplate capacity GPU-seconds.
    pub cluster_util_frac: f64,
    /// Wall-clock span of the run, seconds.
    pub elapsed_s: f64,
    /// High-water mark of concurrently live (queued + active) jobs —
    /// the working set the streaming memory model is sized by.
    pub peak_live_jobs: usize,
    /// `(time, normalised cluster throughput)` at every round.
    pub timeline: Vec<(f64, f64)>,
    /// `(time, raw cluster throughput in samples/s)` at every round.
    pub raw_timeline: Vec<(f64, f64)>,
}

/// Streams a fault-free trace through the engine. See
/// [`simulate_stream_with_faults`].
///
/// # Errors
///
/// Propagates any I/O error from the trace source.
///
/// # Panics
///
/// Panics if the source yields out-of-order submissions.
pub fn simulate_stream(
    cluster: &Cluster,
    policy: &mut dyn Policy,
    service: &PlanService,
    source: &mut dyn TraceSource,
    cfg: &SimConfig,
    plan: &ShardPlan,
) -> std::io::Result<StreamSummary> {
    simulate_stream_with_faults(
        cluster,
        policy,
        service,
        source,
        &[],
        cfg,
        &Obs::disabled(),
        plan,
    )
}

/// The streaming counterpart of
/// [`crate::simulate_sharded_with_faults_traced`]: pulls arrivals from
/// `source` and merges them with the fault schedule in global time
/// order, advancing the engine up to (but never past) each injection
/// point; once the source runs dry the remaining faults load up front
/// and the run drains exactly as the batch driver's does.
///
/// The fault schedule stays a slice: fault events are a few bytes each
/// and their count follows cluster size × horizon, not trace length.
///
/// # Errors
///
/// Propagates any I/O error from the trace source.
///
/// # Panics
///
/// Panics if the source yields out-of-order submissions or the fault
/// schedule is unsorted.
#[allow(clippy::too_many_arguments)]
pub fn simulate_stream_with_faults(
    cluster: &Cluster,
    policy: &mut dyn Policy,
    service: &PlanService,
    source: &mut dyn TraceSource,
    faults: &[FaultEvent],
    cfg: &SimConfig,
    obs: &Obs,
    plan: &ShardPlan,
) -> std::io::Result<StreamSummary> {
    assert!(
        faults.windows(2).all(|w| w[0].time_s <= w[1].time_s),
        "fault schedule must be sorted by time"
    );
    let mut engine = Engine::new(cluster, policy, service, cfg, obs, plan);
    engine.enable_record_fold();
    let mut fault_idx = 0usize;
    let mut next_job = source.next_job()?;
    let mut last_submit_s = f64::NEG_INFINITY;
    while let Some(spec) = next_job.take() {
        assert!(
            spec.submit_s >= last_submit_s,
            "trace must be sorted by submission time ({} after {})",
            spec.submit_s,
            last_submit_s
        );
        last_submit_s = spec.submit_s;
        // Faults strictly earlier than this arrival inject first, each
        // through its own burst-window seam; a fault tied with the
        // arrival can wait (both land in their pending queue before
        // the burst that consumes them fires).
        while faults
            .get(fault_idx)
            .is_some_and(|f| f.time_s < spec.submit_s)
        {
            let fault = faults[fault_idx].clone();
            fault_idx += 1;
            engine.advance_before(fault.time_s);
            engine.push_fault_unchecked(fault);
        }
        engine.advance_before(spec.submit_s);
        engine.push_job_unchecked(spec);
        next_job = source.next_job()?;
    }
    // Source exhausted: the rest of the fault schedule is loaded up
    // front and the input closes *before* the drain — exactly the batch
    // driver's end-game, including its termination semantics (a drained
    // run stops even with later faults still pending).
    for fault in &faults[fault_idx..] {
        engine.push_fault_unchecked(fault.clone());
    }
    engine.close_input();
    engine.run_to_end();
    Ok(engine.finish_stream())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::record_fingerprint;
    use crate::shard::simulate_sharded_with_faults;
    use arena_cluster::presets;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_perf::CostParams;
    use arena_sched::FcfsPolicy;
    use arena_trace::{FaultKind, JobSpec, VecSource};

    fn trace() -> Vec<JobSpec> {
        let mk = |id: u64, submit: f64, size: f64, gpus: usize, pool: usize| JobSpec {
            id,
            name: format!("j{id}"),
            submit_s: submit,
            model: ModelConfig::new(ModelFamily::Bert, size, 256),
            iterations: 300,
            requested_gpus: gpus,
            requested_pool: pool,
            deadline_s: None,
        };
        vec![
            mk(0, 0.0, 0.76, 4, 0),
            mk(1, 100.0, 1.3, 8, 1),
            mk(2, 200.0, 0.76, 2, 0),
            mk(3, 2000.0, 1.3, 4, 1),
        ]
    }

    fn faults() -> Vec<FaultEvent> {
        vec![
            FaultEvent {
                time_s: 400.0,
                pool: 0,
                node: 0,
                kind: FaultKind::Failure,
            },
            FaultEvent {
                time_s: 4000.0,
                pool: 0,
                node: 0,
                kind: FaultKind::Repair,
            },
        ]
    }

    #[test]
    fn streaming_matches_the_batch_driver() {
        let cluster = presets::physical_testbed();
        let jobs = trace();
        let flt = faults();
        let cfg = SimConfig::new(48.0 * 3600.0);
        let plan = ShardPlan::per_pool(&cluster);
        let batch = {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            simulate_sharded_with_faults(
                &cluster,
                &jobs,
                &mut FcfsPolicy::new(),
                &service,
                &cfg,
                &flt,
                &plan,
            )
        };
        let stream = {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            simulate_stream_with_faults(
                &cluster,
                &mut FcfsPolicy::new(),
                &service,
                &mut VecSource::new(jobs.clone()),
                &flt,
                &cfg,
                &Obs::disabled(),
                &plan,
            )
            .unwrap()
        };
        assert_eq!(stream.fingerprint, record_fingerprint(&batch.records));
        assert_eq!(stream.timeline, batch.timeline);
        assert_eq!(stream.raw_timeline, batch.raw_timeline);
        assert_eq!(stream.jobs.jobs as usize, batch.records.len());
        assert_eq!(stream.jobs.finished, batch.metrics.finished as u64);
        assert_eq!(stream.jobs.dropped, batch.metrics.dropped as u64);
        // Float sums fold in termination order, not record order, so
        // they agree only up to rounding; counts and hashes are exact.
        let jct_err = (stream.jobs.avg_jct_s() - batch.metrics.avg_jct_s).abs();
        assert!(jct_err < 1e-6, "avg JCT drifted by {jct_err}");
        assert_eq!(stream.failure_evictions, batch.metrics.failure_evictions);
        assert_eq!(stream.goodput_sps, batch.metrics.goodput_sps);
        assert!(stream.peak_live_jobs >= 1 && stream.peak_live_jobs <= jobs.len());
    }

    #[test]
    fn fingerprint_detects_a_changed_outcome() {
        let cluster = presets::physical_testbed();
        let jobs = trace();
        let cfg = SimConfig::new(48.0 * 3600.0);
        let plan = ShardPlan::per_pool(&cluster);
        let run = |horizon: f64| {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            simulate_stream(
                &cluster,
                &mut FcfsPolicy::new(),
                &service,
                &mut VecSource::new(jobs.clone()),
                &SimConfig::new(horizon),
                &plan,
            )
            .unwrap()
        };
        let full = run(cfg.horizon_s);
        // A horizon cutting the last job short yields different records.
        let cut = run(3000.0);
        assert_ne!(full.fingerprint, cut.fingerprint);
    }
}
