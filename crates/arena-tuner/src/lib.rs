//! Cell-guided parallelism tuning (§5.2).
//!
//! Once a Cell is scheduled, the job needs the *optimal* plan inside the
//! Cell's exploration space, not the estimator's grid sample. Exhaustive
//! exploration (Alpa-style) profiles every `(dp, tp)` combination on the
//! job's full allocation — expensive, and re-triggered on every
//! reschedule. Arena instead prunes each stage's exploration axis to the
//! half containing the parallelism the estimator favoured (Fig. 11):
//! a stage favouring data parallelism is tuned only from DP-only to
//! half-hybrid (`tp ≤ √g`), and symmetrically for tensor parallelism.
//!
//! Both the pruned and the unpruned search charge the ground-truth
//! profiling meter, so the tuning-time reductions of Fig. 13(b) fall out
//! of the accounting.

use arena_estimator::{Cell, CellEstimate, Favor};
use arena_model::ModelGraph;
use arena_parallelism::{stage_plan_options, PipelinePlan, PlanSpace, StagePlan};
use arena_perf::{GroundTruth, HwTarget, PlanPerf};

/// Outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The best plan found.
    pub plan: PipelinePlan,
    /// Its measured performance.
    pub perf: PlanPerf,
    /// Plans directly profiled during the search.
    pub trials: u64,
    /// GPU-seconds this search charged to the profiling meter.
    pub gpu_seconds: f64,
}

/// Builds the pruned exploration space for a Cell given its per-stage
/// favors (Fig. 11).
///
/// For a stage with `g = 2^k` GPUs the full axis runs from DP-only
/// (`tp = 2^0`) to TP-only (`tp = 2^k`), with half-hybrid at
/// `tp = √g`. A DP favor keeps `tp ≤ 2^⌊k/2⌋`; a TP favor keeps
/// `tp ≥ 2^⌈k/2⌉` — both halves include the half-hybrid point.
///
/// # Panics
///
/// Panics if `favors.len()` differs from the Cell's stage count.
#[must_use]
pub fn pruned_space(cell: &Cell, favors: &[Favor]) -> PlanSpace {
    assert_eq!(favors.len(), cell.num_stages, "one favor per stage");
    let options: Vec<Vec<StagePlan>> = cell
        .partition
        .gpus
        .iter()
        .zip(favors)
        .map(|(&g, favor)| {
            let all = stage_plan_options(g);
            if !g.is_power_of_two() {
                return all;
            }
            let k = g.trailing_zeros() as usize;
            let kept: Vec<StagePlan> = match favor {
                Favor::Dp => all
                    .into_iter()
                    .filter(|p| p.tp.trailing_zeros() as usize <= k / 2)
                    .collect(),
                Favor::Tp => all
                    .into_iter()
                    .filter(|p| p.tp.trailing_zeros() as usize >= k.div_ceil(2))
                    .collect(),
            };
            kept
        })
        .collect();
    PlanSpace::with_options(cell.partition.clone(), options)
}

/// Searches a plan space by directly profiling candidates, returning the
/// best feasible plan.
///
/// When the space holds more than `cap` plans the search profiles an
/// evenly strided sample of `cap` of them (the space is a grid, so a
/// stride covers it uniformly); the cap exists to bound a pathological
/// deep-pipeline search and is far above any space the evaluation visits.
#[must_use]
pub fn tune_in_space(
    gt: &GroundTruth,
    graph: &ModelGraph,
    global_batch: usize,
    space: &PlanSpace,
    hw: &HwTarget,
    cap: usize,
) -> Option<TuneResult> {
    let before_gpu_s = gt.meter().gpu_seconds();
    let before_trials = gt.meter().trials();

    let mut best: Option<(PipelinePlan, PlanPerf)> = None;
    for plan in space.sample(cap) {
        if let Ok(perf) = gt.profile_direct(graph, global_batch, &plan, hw) {
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| perf.throughput_sps > b.throughput_sps);
            if better {
                best = Some((plan, perf));
            }
        }
    }

    best.map(|(plan, perf)| TuneResult {
        plan,
        perf,
        trials: gt.meter().trials() - before_trials,
        gpu_seconds: gt.meter().gpu_seconds() - before_gpu_s,
    })
}

/// Default cap on profiled plans per tuning run.
pub const DEFAULT_TUNE_CAP: usize = 4096;

/// Unpruned baseline: explores the Cell's full exploration space.
#[must_use]
pub fn tune_full(
    gt: &GroundTruth,
    graph: &ModelGraph,
    global_batch: usize,
    cell: &Cell,
    hw: &HwTarget,
) -> Option<TuneResult> {
    let space = PlanSpace::new(cell.partition.clone());
    tune_in_space(gt, graph, global_batch, &space, hw, DEFAULT_TUNE_CAP)
}

/// Cell-guided tuning: explores only the half-spaces selected by the
/// estimate's favors.
///
/// # Examples
///
/// ```
/// use arena_cluster::{GpuSpec, NodeSpec};
/// use arena_estimator::{Cell, CellEstimator};
/// use arena_model::zoo::{ModelConfig, ModelFamily};
/// use arena_perf::{CostParams, GroundTruth, HwTarget};
/// use arena_tuner::tune_pruned;
///
/// let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
/// let cell = Cell::new(&graph, 8, 2).unwrap();
/// let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
/// let estimator = CellEstimator::new(CostParams::default(), 7);
/// let estimate = estimator.estimate(&graph, 256, &cell, &hw).unwrap();
///
/// let gt = GroundTruth::new(CostParams::default(), 7);
/// let tuned = tune_pruned(&gt, &graph, 256, &cell, &estimate, &hw).unwrap();
/// assert!(tuned.plan.is_valid_for(&graph));
/// assert!(tuned.trials >= 1);
/// ```
#[must_use]
pub fn tune_pruned(
    gt: &GroundTruth,
    graph: &ModelGraph,
    global_batch: usize,
    cell: &Cell,
    estimate: &CellEstimate,
    hw: &HwTarget,
) -> Option<TuneResult> {
    let space = pruned_space(cell, &estimate.favors);
    tune_in_space(gt, graph, global_batch, &space, hw, DEFAULT_TUNE_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, NodeSpec};
    use arena_estimator::CellEstimator;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_perf::CostParams;

    fn a100() -> HwTarget {
        HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4))
    }

    fn setup(size: f64, gb: usize) -> (GroundTruth, CellEstimator, ModelGraph) {
        let params = CostParams::default();
        (
            GroundTruth::new(params.clone(), 42),
            CellEstimator::new(params, 42),
            ModelConfig::new(ModelFamily::Bert, size, gb).build(),
        )
    }

    #[test]
    fn pruned_space_is_half_per_stage() {
        let (_, est, g) = setup(1.3, 256);
        let cell = Cell::new(&g, 16, 2).unwrap();
        let e = est.estimate(&g, 256, &cell, &a100()).unwrap();
        let full = PlanSpace::new(cell.partition.clone()).len();
        let pruned = pruned_space(&cell, &e.favors).len();
        // 8 GPUs per stage: 4 options full, 2 kept -> 16 vs 4.
        assert_eq!(full, 16);
        assert_eq!(pruned, 4);
    }

    #[test]
    fn pruned_halves_contain_half_hybrid() {
        let (_, _, g) = setup(1.3, 256);
        let cell = Cell::new(&g, 16, 1).unwrap(); // one stage of 16 GPUs
        for favor in [Favor::Dp, Favor::Tp] {
            let sp = pruned_space(&cell, &[favor]);
            let has_half = sp
                .iter()
                .any(|p| p.stages[0].plan == StagePlan { dp: 4, tp: 4 });
            assert!(has_half, "{favor:?} half-space lost the half-hybrid");
        }
    }

    #[test]
    fn tuning_finds_a_plan_and_charges_meter() {
        let (gt, est, g) = setup(1.3, 256);
        let cell = Cell::new(&g, 8, 2).unwrap();
        let e = est.estimate(&g, 256, &cell, &a100()).unwrap();
        let r = tune_pruned(&gt, &g, 256, &cell, &e, &a100()).unwrap();
        assert!(r.trials > 0);
        assert!(r.gpu_seconds > 0.0);
        assert!(r.plan.is_valid_for(&g));
        assert!(r.perf.throughput_sps > 0.0);
    }

    #[test]
    fn pruned_tuning_is_cheaper_than_full() {
        let (gt, est, g) = setup(1.3, 512);
        let cell = Cell::new(&g, 16, 4).unwrap();
        let e = est.estimate(&g, 512, &cell, &a100()).unwrap();
        let full = tune_full(&gt, &g, 512, &cell, &a100()).unwrap();
        let pruned = tune_pruned(&gt, &g, 512, &cell, &e, &a100()).unwrap();
        assert!(
            pruned.gpu_seconds < full.gpu_seconds,
            "pruned {} >= full {}",
            pruned.gpu_seconds,
            full.gpu_seconds
        );
        assert!(pruned.trials < full.trials);
    }

    #[test]
    fn pruned_tuning_is_nearly_as_good_as_full() {
        let (gt, est, g) = setup(2.6, 256);
        let hw = a100();
        let cell = Cell::new(&g, 8, 2).unwrap();
        let e = est.estimate(&g, 256, &cell, &hw).unwrap();
        let full = tune_full(&gt, &g, 256, &cell, &hw).unwrap();
        let pruned = tune_pruned(&gt, &g, 256, &cell, &e, &hw).unwrap();
        let acc = pruned.perf.throughput_sps / full.perf.throughput_sps;
        assert!(acc > 0.85, "tuning accuracy {acc} too low");
        assert!(acc <= 1.0 + 1e-9);
    }

    #[test]
    fn infeasible_everywhere_returns_none() {
        let params = CostParams::default();
        let gt = GroundTruth::new(params, 1);
        let g = ModelConfig::new(ModelFamily::Moe, 27.0, 256).build();
        let cell = Cell::new(&g, 2, 1).unwrap();
        let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A10, 2));
        assert!(tune_full(&gt, &g, 256, &cell, &hw).is_none());
    }

    #[test]
    #[should_panic(expected = "one favor per stage")]
    fn favor_count_mismatch_panics() {
        let (_, _, g) = setup(1.3, 256);
        let cell = Cell::new(&g, 8, 4).unwrap();
        let _ = pruned_space(&cell, &[Favor::Dp]);
    }
}
