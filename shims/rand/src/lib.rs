//! Offline drop-in shim for the subset of the `rand` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` with this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). Only the surface actually consumed by `arena-trace` is
//! provided: the [`Rng`]/[`RngExt`]/[`SeedableRng`] traits and a
//! deterministic [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand_xoshiro` crate uses — so draws are of high
//! statistical quality and fully reproducible from a `u64` seed.

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG's raw output.
///
/// `f64` draws land in `[0, 1)`; integers cover their whole range; `bool`
/// is a fair coin.
pub trait UniformSample: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a bounded uniform integer can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is tiny relative
                // to 2^64 in all callers, so rejection is effectively free.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                if s == e {
                    return s;
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, i64, i32);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value of type `T`.
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's "standard" RNG).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.random_range(0..7_usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x = r.random_range(5..6_usize);
            assert_eq!(x, 5);
        }
    }
}
