//! Offline drop-in shim for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` test macro, `prop_assert*`/`prop_assume!`,
//! `ProptestConfig::with_cases`, range/tuple/regex-lite/collection
//! strategies, and a deterministic case runner. Shrinking is not
//! implemented: a failing case reports its seed and generated inputs are
//! reproducible from it, which is enough to debug in a deterministic
//! codebase. Generation is seeded from the test name, so runs are stable
//! across processes.

pub use rand::rngs::StdRng as TestRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed; the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; try another case.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Values that can generate random instances for a property.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;
    /// Draws one instance.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the upstream combinator of the
    /// same name; no shrinking in this shim, so it is just composition).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

/// Boolean coin-flip strategy (stand-in for `any::<bool>()`).
pub mod bool {
    /// A fair-coin strategy.
    pub struct Any;
    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            use rand::RngExt;
            rng.random()
        }
    }
    /// Returns the coin-flip strategy.
    pub fn any() -> Any {
        Any
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $ix:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Regex-lite string strategy: supports literal characters, `[a-z09_]`
/// classes (with ranges) and `{n}` / `{m,n}` quantifiers — the subset
/// this workspace's properties use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {self:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad quantifier"),
                        n.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let count = rng.random_range(lo..=hi);
            for _ in 0..count {
                out.push(alphabet[rng.random_range(0..alphabet.len())]);
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: runs cases until `cfg.cases` succeed, panicking
/// on the first failure with the seed that reproduces it.
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv64(name);
    let mut successes = 0u32;
    let max_attempts = cfg.cases.saturating_mul(16).max(cfg.cases);
    for attempt in 0..max_attempts {
        if successes >= cfg.cases {
            return;
        }
        let seed = base ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed (seed {seed:#x}): {msg}");
            }
        }
    }
    assert!(
        successes > 0,
        "property `{name}`: every generated case was rejected by prop_assume!"
    );
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Rejects the current case (skips it) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The glob-import surface used by downstream tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_and_tuple_strategies() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = Strategy::generate(&(0_usize..5), &mut rng);
            assert!(x < 5);
            let (a, b) = Strategy::generate(&((0_u32..3), (1.0_f64..2.0)), &mut rng);
            assert!(a < 3);
            assert!((1.0..2.0).contains(&b));
        }
    }

    #[test]
    fn regex_lite_strategy() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let lit = Strategy::generate(&"ab[0-9]{2}", &mut rng);
        assert!(lit.starts_with("ab") && lit.len() == 4);
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = Strategy::generate(&collection::vec(0_usize..4, 1..10), &mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0_usize..100, v in collection::vec(0_u32..10, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.iter().count());
        }
    }
}
