//! Offline drop-in shim for the subset of `parking_lot` this workspace
//! uses: `Mutex` and `RwLock` with panic-free (`lock()`/`read()`/
//! `write()`) guards, backed by `std::sync`.
//!
//! Poisoning is deliberately swallowed: `parking_lot` locks do not
//! poison, so a panicked holder must not turn every later access into an
//! error. The inner data is recovered from the poison wrapper instead.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A readers-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
