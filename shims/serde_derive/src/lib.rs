//! Offline derive-macro shim backing the `serde` shim crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! three type shapes this workspace actually derives:
//!
//! * structs with named fields → JSON objects (field order preserved);
//! * tuple structs with one field (newtypes) → the inner value;
//! * enums whose variants are all units → the variant name as a string.
//!
//! The macro parses the item's `TokenStream` by hand (no `syn`/`quote` —
//! they are unavailable offline) and emits the impl as a source string
//! re-parsed into a `TokenStream`. Generic types, data-carrying enum
//! variants and `#[serde(...)]` attributes are out of scope and rejected
//! with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim data model: `fn to_value(&self)`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (shim data model: `fn from_value(&Value)`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// The shapes the shim can derive for.
enum Shape {
    /// Struct with named fields (their names, in declaration order).
    Named(Vec<String>),
    /// Tuple struct with this many fields (only 1 is supported downstream).
    Tuple(usize),
    /// Enum made of unit variants (their names, in declaration order).
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (incl. doc comments) and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_top_level_fields(g.stream()))
            }
            other => {
                return Err(format!(
                    "serde shim derive: unsupported struct body for `{name}`: {other:?}"
                ))
            }
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(g.stream(), &name)?)
            }
            other => {
                return Err(format!(
                    "serde shim derive: expected enum body for `{name}`, found {other:?}"
                ))
            }
        }
    };

    Ok(Item { name, shape })
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a brace-group stream into chunks on top-level commas.
/// "Top-level" means outside `<...>` generics; bracket-like delimiters are
/// already nested as `Group`s by the tokenizer.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let variant = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            if chunk.len() > i + 1 {
                return Err(format!(
                    "serde shim derive: enum `{enum_name}` has non-unit variant `{variant}`"
                ));
            }
            Ok(variant)
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|ix| format!("::serde::Serialize::to_value(&self.{ix})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, {f:?})?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|ix| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({ix}).ok_or_else(|| \
                         ::serde::DeError::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array\"))?;\n\
                 Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {},\n\
                         other => Err(::serde::DeError::custom(format!(\n\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     other => Err(::serde::DeError::custom(format!(\n\
                         \"expected string for enum {name}, got {{other:?}}\"))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
