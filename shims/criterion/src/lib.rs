//! Offline drop-in shim for the subset of `criterion` this workspace
//! uses: `Criterion::{bench_function, benchmark_group}`, benchmark
//! groups with `sample_size`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical engine, each benchmark runs a short
//! warm-up followed by `sample_size` timed samples and reports the mean
//! and min per-iteration wall time. That keeps `cargo bench` working (and
//! useful for coarse regression spotting) without any external
//! dependencies.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.default_sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<S: std::fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finishes the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes ≥ ~2 ms,
    // so per-iteration noise stays small without long runs.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
        total += per_iter;
        min = min.min(per_iter);
    }
    let mean = total / u32::try_from(samples).unwrap_or(1);
    println!(
        "bench {name:<48} mean {:>10}   min {:>10}   ({samples} samples x {iters} iters)",
        fmt_time(mean),
        fmt_time(min)
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| std::hint::black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_api_works() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| ()));
        group.finish();
    }
}
