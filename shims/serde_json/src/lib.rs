//! Offline drop-in shim for the subset of `serde_json` this workspace
//! uses: pretty serialization to strings/writers and deserialization from
//! strings/readers, routed through the `serde` shim's [`Value`] data
//! model.
//!
//! Numbers print with enough precision to round-trip `f64` exactly
//! (Rust's `{}` float formatting is shortest-roundtrip), matching the
//! real crate's `float_roundtrip` feature this workspace enables.

use std::fmt::Write as _;
use std::io::Read;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type for serialization and parsing failures.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a pretty-printed JSON string.
///
/// # Errors
///
/// Infallible for the shim data model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Infallible for the shim data model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON into `writer`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserializes a `T` from a reader producing JSON.
///
/// # Errors
///
/// Returns I/O, parse, or shape-mismatch errors.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---- printer ----

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        // Real serde_json rejects these; the shim degrades to null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                write_indent(out, depth + 1);
                write_value(out, item, depth + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            write_indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                write_indent(out, depth + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, val, depth + 1);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            write_indent(out, depth);
            out.push('}');
        }
    }
}

fn write_value_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value_compact(out, val);
            }
            out.push('}');
        }
    }
}

// ---- parser (recursive descent) ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map them to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?} at byte {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.0e9)];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_roundtrip_exact() {
        let xs = vec![0.1_f64, 1.0 / 3.0, 2.0e9, -1.5e-300, 123456789.123456];
        let s = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("nul").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
