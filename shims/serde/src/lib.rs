//! Offline drop-in shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `serde` with this crate. Rather than reproduce serde's full
//! serializer/deserializer machinery, the shim routes everything through
//! one self-describing [`Value`] tree:
//!
//! * [`Serialize`] converts a Rust value into a [`Value`];
//! * [`Deserialize`] rebuilds a Rust value from a [`Value`].
//!
//! The derive macros (re-exported from the sibling `serde_derive` shim)
//! generate those two conversions for plain structs, newtype structs and
//! unit-variant enums — exactly the shapes this repository derives. The
//! `serde_json` shim then renders/parses `Value` as JSON with the same
//! conventions real serde uses (structs as objects, tuples as arrays,
//! unit enum variants as strings, newtypes as their inner value).

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of data, the interchange point between
/// [`Serialize`], [`Deserialize`] and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == field)
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the shim's data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the shim's data model.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Extracts and deserializes a struct field (derive-macro helper).
///
/// A missing field deserializes as if it were `null`, so `Option`
/// fields may be omitted entirely — mirroring serde's implicit
/// `#[serde(default)]` for `Option`. Types that reject `null` report
/// the friendlier "missing field" error.
///
/// # Errors
///
/// Returns [`DeError`] when the field is missing (and the type rejects
/// `null`) or has the wrong shape.
pub fn field<T: Deserialize>(obj: &Value, name: &str) -> Result<T, DeError> {
    match obj.get(name) {
        Some(v) => T::from_value(v),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
    }
}

// ---- Serialize impls for primitives and std containers ----

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $ix:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.to_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(field::<T>(v, "start")?..field::<T>(v, "end")?)
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// ---- Deserialize impls ----

fn want_u64(v: &Value) -> Result<u64, DeError> {
    match *v {
        Value::U64(x) => Ok(x),
        Value::I64(x) if x >= 0 => Ok(x as u64),
        Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(x as u64),
        ref other => Err(DeError::custom(format!(
            "expected unsigned integer, got {other:?}"
        ))),
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = want_u64(v)?;
                <$t>::try_from(x)
                    .map_err(|_| DeError::custom(format!("{x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

fn want_i64(v: &Value) -> Result<i64, DeError> {
    match *v {
        Value::I64(x) => Ok(x),
        Value::U64(x) if x <= i64::MAX as u64 => Ok(x as i64),
        Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Ok(x as i64),
        ref other => Err(DeError::custom(format!("expected integer, got {other:?}"))),
    }
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = want_i64(v)?;
                <$t>::try_from(x)
                    .map_err(|_| DeError::custom(format!("{x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::I64(x) => Ok(x as f64),
            Value::U64(x) => Ok(x as f64),
            ref other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($name:ident : $ix:tt),+)),+ $(,)?) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected array of {}, got {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$ix])?,)+))
            }
        }
    )+};
}
de_tuple!(
    (1; A: 0),
    (2; A: 0, B: 1),
    (3; A: 0, B: 1, C: 2),
    (4; A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42_u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5_f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <(usize, usize)>::from_value(&(3_usize, 4_usize).to_value()).unwrap(),
            (3, 4)
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(f64, f64)> = vec![(0.0, 1.0), (2.0, 3.0)];
        let round: Vec<(f64, f64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(v, round);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(<(usize, usize)>::from_value(&Value::Array(vec![Value::U64(1)])).is_err());
    }

    #[test]
    fn missing_optional_fields_default_to_none() {
        let obj = Value::Object(vec![("present".to_string(), Value::F64(2.0))]);
        assert_eq!(field::<Option<f64>>(&obj, "absent").unwrap(), None);
        assert_eq!(field::<Option<f64>>(&obj, "present").unwrap(), Some(2.0));
        // Non-optional types still report the missing field by name.
        let err = field::<u64>(&obj, "absent").unwrap_err();
        assert!(err.to_string().contains("missing field `absent`"));
    }
}
