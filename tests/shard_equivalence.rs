//! The sharded decision loop against the serial event-indexed engine.
//!
//! `arena::sim::shard` partitions the cluster into per-pool scheduler
//! shards — each with its own event heap and membership indexes —
//! deciding concurrently on a worker pool, with a deterministic merge
//! round folding per-shard streams back into submission order. The
//! contract is that the shard count and worker pool are pure execution
//! knobs: output must be *byte-identical* to the unsharded engine — every
//! record, timeline sample, decision line (including `shard=` provenance)
//! and traced job event — at any shard count. These tests pin that
//! contract across:
//!
//! * every comparison policy (FCFS, Gandiva, Gavel, ElasticFlow, Arena),
//! * shard counts 1 / 2 / 4 / 8, crossed with worker-pool sizes 1 and 4,
//! * faulted and unfaulted schedules, and
//! * adversarial partition maps (everything folded onto one shard,
//!   shards than partitions, custom pool groupings).

use arena::prelude::*;
use arena::sched::{policy_by_name, POLICY_NAMES};
use arena::trace::FaultEvent;

/// The five-way comparison set with every environment knob pinned.
///
/// `arena::experiments::comparison_policies()` builds `ArenaPolicy::new()`,
/// which consults `ARENA_WORKER_THREADS` — so a stray variable in the
/// test runner's environment would silently change what this suite
/// exercises. Equivalence tests must control their execution knobs
/// explicitly (the worker pool under test comes from the `ShardPlan`),
/// so build each policy by name with the worker count pinned to 1.
fn pinned_policies() -> Vec<Box<dyn Policy>> {
    POLICY_NAMES
        .iter()
        .map(|name| policy_by_name(name, 1).expect("known policy"))
        .collect()
}

fn mixed_trace(n: u64, gap_s: f64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 300 + 150 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

/// Everything observable about a run except wall-clock decision timing.
fn fingerprint(mut r: SimResult) -> String {
    r.metrics.avg_decision_s = 0.0;
    format!(
        "policy={}\nmetrics={}\nrecords={:?}\ntimeline={:?}\nraw={:?}\ndecisions=\n{}\nevents={:?}\nnodes={:?}",
        r.policy,
        serde_json::to_string(&r.metrics).expect("metrics serialise"),
        r.records,
        r.timeline,
        r.raw_timeline,
        r.trace.decisions_jsonl(),
        r.trace.timeline.events,
        r.trace.timeline.nodes,
    )
}

/// Serial-engine fingerprints for every comparison policy on a scenario.
fn serial_fingerprints(jobs: &[JobSpec], faults: &[FaultEvent], cfg: &SimConfig) -> Vec<String> {
    let cluster = arena::cluster::presets::physical_testbed();
    pinned_policies()
        .into_iter()
        .map(|mut policy| {
            let service = PlanService::new(&cluster, CostParams::default(), 17);
            let obs = Obs::enabled();
            fingerprint(simulate_with_faults_traced(
                &cluster,
                jobs,
                policy.as_mut(),
                &service,
                cfg,
                faults,
                &obs,
            ))
        })
        .collect()
}

/// Sharded-engine fingerprints for every comparison policy under `plan`.
fn sharded_fingerprints(
    jobs: &[JobSpec],
    faults: &[FaultEvent],
    cfg: &SimConfig,
    plan: &ShardPlan,
) -> Vec<String> {
    let cluster = arena::cluster::presets::physical_testbed();
    pinned_policies()
        .into_iter()
        .map(|mut policy| {
            let service = PlanService::new(&cluster, CostParams::default(), 17);
            let obs = Obs::enabled();
            fingerprint(simulate_sharded_with_faults_traced(
                &cluster,
                jobs,
                policy.as_mut(),
                &service,
                cfg,
                faults,
                &obs,
                plan,
            ))
        })
        .collect()
}

/// The tentpole assertion: for every policy, every shard count in
/// {1, 2, 4, 8} crossed with worker pools {1, 4} reproduces the serial
/// engine byte-for-byte.
fn assert_shard_invariant(jobs: &[JobSpec], faults: &[FaultEvent], cfg: &SimConfig) {
    let cluster = arena::cluster::presets::physical_testbed();
    let serial = serial_fingerprints(jobs, faults, cfg);
    assert_eq!(serial.len(), 5, "comparison set drifted");
    for shards in [1_usize, 2, 4, 8] {
        for workers in [1_usize, 4] {
            let plan = ShardPlan::per_pool(&cluster)
                .with_shards(shards)
                .with_workers(WorkerPool::new(workers));
            let sharded = sharded_fingerprints(jobs, faults, cfg, &plan);
            for (s, ser) in sharded.iter().zip(&serial) {
                assert_eq!(
                    s, ser,
                    "sharded engine diverged at shards={shards} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn all_policies_all_shard_counts_unfaulted() {
    let jobs = mixed_trace(12, 150.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    assert_shard_invariant(&jobs, &[], &cfg);
}

#[test]
fn all_policies_all_shard_counts_faulted() {
    let jobs = mixed_trace(12, 150.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let faults = arena::trace::generate_faults(
        &arena::trace::FaultConfig::with_mtbf(9_000.0),
        &[16, 16],
        24.0 * 3600.0,
    );
    assert!(!faults.is_empty(), "fixture produced no faults");
    assert_shard_invariant(&jobs, &faults, &cfg);
}

#[test]
fn horizon_cutoff_matches_serial() {
    // A horizon slicing through running jobs exercises the open-segment
    // flush paths under sharding.
    let jobs = mixed_trace(8, 60.0);
    let cfg = SimConfig::new(2_500.0);
    assert_shard_invariant(&jobs, &[], &cfg);
}

#[test]
fn custom_partition_maps_are_invisible() {
    // Grouping both pools into one partition, or scattering them, must
    // not change decisions: the partition map steers execution only.
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = mixed_trace(10, 120.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let serial = serial_fingerprints(&jobs, &[], &cfg);
    for map in [
        PartitionMap::single(cluster.num_pools()),
        PartitionMap::with_partitions(vec![1, 0], 2),
        PartitionMap::with_partitions(vec![3, 5], 6),
    ] {
        for shards in [1, 3, 8] {
            let plan = ShardPlan::per_pool(&cluster)
                .with_partition(map.clone())
                .with_shards(shards)
                .with_workers(WorkerPool::new(2));
            let sharded = sharded_fingerprints(&jobs, &[], &cfg, &plan);
            for (s, ser) in sharded.iter().zip(&serial) {
                assert_eq!(s, ser, "partition map leaked into output (shards={shards})");
            }
        }
    }
}

#[test]
fn decisions_carry_home_shard_provenance() {
    // Every placement decision records the job's home partition — and the
    // stamp is identical whether the run was sharded or serial.
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = mixed_trace(8, 100.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let service = PlanService::new(&cluster, CostParams::default(), 17);
    let obs = Obs::enabled();
    let plan = ShardPlan::per_pool(&cluster);
    let r = simulate_sharded_with_faults_traced(
        &cluster,
        &jobs,
        &mut FcfsPolicy::new(),
        &service,
        &cfg,
        &[],
        &obs,
        &plan,
    );
    let jsonl = r.trace.decisions_jsonl();
    assert!(!jsonl.is_empty(), "no decisions traced");
    let stamped = jsonl
        .lines()
        .filter(|l| l.contains("\"kind\":\"place\""))
        .collect::<Vec<_>>();
    assert!(!stamped.is_empty(), "no placement decisions traced");
    for line in &stamped {
        assert!(
            line.contains("\"shard\":"),
            "placement decision missing shard provenance: {line}"
        );
    }
}

#[test]
fn env_plan_respects_arena_shards() {
    // `ShardPlan::from_env` honours ARENA_SHARDS; the CI matrix drives
    // the suite through this knob. Set the variable for this process and
    // confirm the plan picks it up (the test runner may already have it
    // set — in that case verify consistency instead of overriding).
    let cluster = arena::cluster::presets::physical_testbed();
    match std::env::var("ARENA_SHARDS") {
        Ok(v) => {
            let want: usize = v.parse().expect("ARENA_SHARDS parses");
            assert_eq!(ShardPlan::from_env(&cluster).shards(), want.max(1));
        }
        Err(_) => {
            assert_eq!(
                ShardPlan::from_env(&cluster).shards(),
                ShardPlan::per_pool(&cluster).partition().partitions()
            );
        }
    }
}

#[test]
fn env_shard_count_reproduces_serial() {
    // Whatever ARENA_SHARDS the CI matrix sets, the env-derived plan
    // must reproduce the serial engine byte-for-byte.
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = mixed_trace(10, 130.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let serial = serial_fingerprints(&jobs, &[], &cfg);
    let plan = ShardPlan::from_env(&cluster);
    let sharded = sharded_fingerprints(&jobs, &[], &cfg, &plan);
    for (s, ser) in sharded.iter().zip(&serial) {
        assert_eq!(
            s,
            ser,
            "env-derived plan (shards={}) diverged",
            plan.shards()
        );
    }
}
