//! Graceful shutdown and replay-based recovery.
//!
//! The daemon appends every accepted mutating command to its event log.
//! Closing the server mid-trace must drain in-flight decisions (the
//! current burst completes; state is published) and flush the decision
//! JSONL; a second server resuming from the flushed event log, fed the
//! rest of the trace, must reproduce the batch fingerprint byte for
//! byte — the online run survives a restart without observable drift.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use arena::prelude::*;
use arena::sched::policy_by_name;
use arena::sim::simulate_sharded_with_faults_traced;
use arena::trace::FaultEvent;
use arena_server::protocol::{fault_line, submit_line};
use arena_server::{Server, ServerConfig};

fn mixed_trace(n: u64, gap_s: f64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 300 + 150 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

fn fingerprint(mut r: SimResult) -> String {
    r.metrics.avg_decision_s = 0.0;
    format!(
        "policy={}\nmetrics={}\nrecords={:?}\ntimeline={:?}\nraw={:?}\ndecisions=\n{}\nevents={:?}\nnodes={:?}",
        r.policy,
        serde_json::to_string(&r.metrics).expect("metrics serialise"),
        r.records,
        r.timeline,
        r.raw_timeline,
        r.trace.decisions_jsonl(),
        r.trace.timeline.events,
        r.trace.timeline.nodes,
    )
}

fn batch_fingerprint(
    policy: &str,
    jobs: &[JobSpec],
    faults: &[FaultEvent],
    cfg: &SimConfig,
    shards: usize,
) -> String {
    let cluster = arena::cluster::presets::physical_testbed();
    let mut p = policy_by_name(policy, 1).expect("known policy");
    let service = PlanService::new(&cluster, CostParams::default(), 17);
    let obs = Obs::enabled();
    let plan = ShardPlan::per_pool(&cluster)
        .with_shards(shards)
        .with_workers(WorkerPool::new(1));
    fingerprint(simulate_sharded_with_faults_traced(
        &cluster,
        jobs,
        p.as_mut(),
        &service,
        cfg,
        faults,
        &obs,
        &plan,
    ))
}

fn command_stream(jobs: &[JobSpec], faults: &[FaultEvent]) -> Vec<String> {
    let mut lines = Vec::with_capacity(jobs.len() + faults.len());
    let (mut ji, mut fi) = (0, 0);
    while ji < jobs.len() || fi < faults.len() {
        let take_job =
            fi >= faults.len() || (ji < jobs.len() && jobs[ji].submit_s <= faults[fi].time_s);
        if take_job {
            lines.push(submit_line(&jobs[ji]));
            ji += 1;
        } else {
            lines.push(fault_line(&faults[fi]));
            fi += 1;
        }
    }
    lines
}

/// A unique scratch path per call (the test binary may run these tests
/// concurrently).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "arena-server-test-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

fn config(policy: &str, cfg: &SimConfig) -> ServerConfig {
    ServerConfig::new(
        policy,
        arena::cluster::presets::physical_testbed(),
        cfg.clone(),
    )
    .with_shards(2)
}

#[test]
fn restart_from_event_log_reproduces_batch_fingerprint() {
    let jobs = mixed_trace(12, 150.0);
    let faults = arena::trace::generate_faults(
        &arena::trace::FaultConfig::with_mtbf(9_000.0),
        &[16, 16],
        24.0 * 3600.0,
    );
    let cfg = SimConfig::new(24.0 * 3600.0);
    let batch = batch_fingerprint("arena", &jobs, &faults, &cfg, 2);
    let stream = command_stream(&jobs, &faults);
    let split = stream.len() / 2;
    let log_path = scratch("restart");

    // First server: feed half the trace, then shut down mid-run.
    {
        let mut sc = config("arena", &cfg);
        sc.event_log = Some(log_path.clone());
        let server = Server::start(sc).expect("server A start");
        let handle = server.handle();
        for line in &stream[..split] {
            assert!(handle.handle_line(line).contains("\"ok\":true"), "{line}");
        }
        let outcome = server.join();
        // Mid-trace shutdown: not drained, but state is coherent and the
        // decision log so far was flushed.
        assert!(!outcome.state.drained);
        assert!(outcome.result.is_none());
        assert_eq!(outcome.event_log.len(), split);
        assert!(
            !outcome.decisions_jsonl.is_empty(),
            "decision JSONL not flushed"
        );
    }

    // Second server: resume from the flushed log, feed the rest, drain.
    let online = {
        let mut sc = config("arena", &cfg);
        sc.resume = Some(log_path.clone());
        sc.event_log = Some(log_path.clone());
        let server = Server::start(sc).expect("server B start");
        let handle = server.handle();
        // Replay restored the clock and state.
        let snap = handle.hub().load();
        assert_eq!(
            snap.state.submitted,
            stream[..split]
                .iter()
                .filter(|l| l.contains("\"cmd\":\"submit\""))
                .count()
        );
        for line in &stream[split..] {
            assert!(handle.handle_line(line).contains("\"ok\":true"), "{line}");
        }
        assert!(handle
            .handle_line("{\"cmd\":\"drain\"}")
            .contains("\"drained\":true"));
        let outcome = server.join();
        // The log now holds the full accepted stream (drain included).
        assert_eq!(outcome.event_log.len(), stream.len() + 1);
        fingerprint(outcome.result.expect("drained"))
    };
    let _ = std::fs::remove_file(&log_path);
    assert_eq!(online, batch, "restarted run diverged from batch");
}

#[test]
fn replay_tolerates_a_truncated_trailing_line() {
    // A crash can leave a half-written last line in the log; recovery
    // skips it and replays the intact prefix.
    let jobs = mixed_trace(6, 150.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let log_path = scratch("truncated");
    {
        let mut sc = config("fcfs", &cfg);
        sc.event_log = Some(log_path.clone());
        let server = Server::start(sc).expect("server start");
        let handle = server.handle();
        for job in &jobs {
            assert!(handle
                .handle_line(&submit_line(job))
                .contains("\"ok\":true"));
        }
        let _ = server.join();
    }
    // Simulate the crash: chop the last line in half.
    let text = std::fs::read_to_string(&log_path).expect("log readable");
    let intact: Vec<&str> = text.lines().collect();
    let last = intact.last().expect("log has lines");
    let truncated = format!(
        "{}\n{}",
        intact[..intact.len() - 1].join("\n"),
        &last[..last.len() / 2]
    );
    std::fs::write(&log_path, truncated).expect("rewrite log");

    let mut sc = config("fcfs", &cfg);
    sc.resume = Some(log_path.clone());
    let server = Server::start(sc).expect("resume start");
    let handle = server.handle();
    let snap = handle.hub().load();
    assert_eq!(
        snap.state.submitted,
        jobs.len() - 1,
        "truncated line was not skipped"
    );
    // The daemon keeps accepting input after a lossy recovery.
    assert!(handle
        .handle_line(&submit_line(&jobs[jobs.len() - 1]))
        .contains("\"ok\":true"));
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let outcome = server.join();
    assert!(outcome.state.drained);
    assert_eq!(outcome.state.submitted, jobs.len());
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn shutdown_flushes_decision_log_to_disk() {
    let jobs = mixed_trace(8, 120.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let decisions_path = scratch("decisions");
    let mut sc = config("fcfs", &cfg);
    sc.decision_log = Some(decisions_path.clone());
    let server = Server::start(sc).expect("server start");
    let handle = server.handle();
    for job in &jobs {
        assert!(handle
            .handle_line(&submit_line(job))
            .contains("\"ok\":true"));
    }
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let outcome = server.join();
    let on_disk = std::fs::read_to_string(&decisions_path).expect("decision log written");
    assert_eq!(on_disk, outcome.decisions_jsonl);
    assert!(!on_disk.is_empty());
    for line in on_disk.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("decision line parses");
        assert!(v.get("seq").is_some());
    }
    let _ = std::fs::remove_file(&decisions_path);
}

#[test]
fn in_memory_event_log_replays_identically() {
    // The outcome's in-memory event log alone (no files) is enough to
    // reproduce a run: feed it to a fresh daemon line by line.
    let jobs = mixed_trace(10, 130.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let first = {
        let server = Server::start(config("gavel", &cfg)).expect("server start");
        let handle = server.handle();
        for job in &jobs {
            assert!(handle
                .handle_line(&submit_line(job))
                .contains("\"ok\":true"));
        }
        assert!(handle
            .handle_line("{\"cmd\":\"drain\"}")
            .contains("\"drained\":true"));
        server.join()
    };
    let replayed = {
        let server = Server::start(config("gavel", &cfg)).expect("replay start");
        let handle = server.handle();
        for line in &first.event_log {
            assert!(handle.handle_line(line).contains("\"ok\":true"), "{line}");
        }
        server.join()
    };
    assert!(
        replayed.state.drained,
        "event log did not include the drain"
    );
    let (a, b) = (
        fingerprint(first.result.expect("drained")),
        fingerprint(replayed.result.expect("drained")),
    );
    assert_eq!(a, b, "in-memory replay diverged");
}
