//! The event-indexed engine against the pre-index reference loop.
//!
//! `arena::sim::reference` is a frozen copy of the engine as it was
//! before the event-indexed core (lazy-deletion event heap, membership
//! indexes, lazy advance, interned plan keys): full-table scans
//! everywhere. The rewrite's contract is that none of that machinery is
//! observable — not merely statistically close, but *byte-identical*
//! output: every record, every timeline sample, every decision line,
//! every traced job event. These tests hold the two loops together:
//!
//! 1. across all five comparison policies, unfaulted and faulted, with
//!    observability enabled (so the traced event stream is compared
//!    too), and
//! 2. under proptest-generated arrival/fault schedules, where any heap
//!    desync — a stale entry surviving a generation bump, a missed
//!    refresh after an advance — would surface as a divergent timeline.

use arena::prelude::*;
use arena::sim::reference;
use arena::trace::FaultEvent;
use proptest::prelude::*;

fn mixed_trace(n: u64, gap_s: f64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 300 + 150 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

/// Everything observable about a run except wall-clock decision timing:
/// metrics, per-job records, both throughput timelines, the decision
/// log, and the traced job-event timeline.
fn fingerprint(mut r: SimResult) -> String {
    r.metrics.avg_decision_s = 0.0;
    format!(
        "policy={}\nmetrics={}\nrecords={:?}\ntimeline={:?}\nraw={:?}\ndecisions=\n{}\nevents={:?}\nnodes={:?}",
        r.policy,
        serde_json::to_string(&r.metrics).expect("metrics serialise"),
        r.records,
        r.timeline,
        r.raw_timeline,
        r.trace.decisions_jsonl(),
        r.trace.timeline.events,
        r.trace.timeline.nodes,
    )
}

/// Runs the same scenario through both engines (fresh policy + service
/// each, so no cache state crosses over) and asserts byte equality.
fn assert_equivalent(jobs: &[JobSpec], faults: &[FaultEvent], cfg: &SimConfig, traced: bool) {
    let cluster = arena::cluster::presets::physical_testbed();
    let run = |engine_new: bool| -> Vec<String> {
        arena::experiments::comparison_policies()
            .into_iter()
            .map(|mut policy| {
                let service = PlanService::new(&cluster, CostParams::default(), 17);
                let obs = if traced {
                    Obs::enabled()
                } else {
                    Obs::disabled()
                };
                let r = if engine_new {
                    simulate_with_faults_traced(
                        &cluster,
                        jobs,
                        policy.as_mut(),
                        &service,
                        cfg,
                        faults,
                        &obs,
                    )
                } else {
                    reference::simulate_with_faults_traced(
                        &cluster,
                        jobs,
                        policy.as_mut(),
                        &service,
                        cfg,
                        faults,
                        &obs,
                    )
                };
                fingerprint(r)
            })
            .collect()
    };
    let indexed = run(true);
    let referenced = run(false);
    assert_eq!(indexed.len(), 5);
    for (new, old) in indexed.iter().zip(&referenced) {
        assert_eq!(new, old, "indexed engine diverged from the reference loop");
    }
}

#[test]
fn all_policies_match_reference_unfaulted() {
    let jobs = mixed_trace(12, 150.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    assert_equivalent(&jobs, &[], &cfg, true);
}

#[test]
fn all_policies_match_reference_faulted() {
    let jobs = mixed_trace(12, 150.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let faults = arena::trace::generate_faults(
        &arena::trace::FaultConfig::with_mtbf(9_000.0),
        &[16, 16],
        24.0 * 3600.0,
    );
    assert!(!faults.is_empty(), "fixture produced no faults");
    assert_equivalent(&jobs, &faults, &cfg, true);
}

#[test]
fn horizon_cutoff_matches_reference() {
    // A horizon that slices through running jobs exercises the
    // unfinished-job paths (open segments flushed at the cutoff).
    let jobs = mixed_trace(8, 60.0);
    let cfg = SimConfig::new(2_500.0);
    assert_equivalent(&jobs, &[], &cfg, true);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random arrival spacings and fault-schedule densities: whatever
    /// interleaving of failures, repairs, arrivals and completions
    /// results, the heap-driven loop must never desync from the
    /// reference scan (FCFS keeps the policy side cheap so the engine
    /// paths dominate).
    #[test]
    fn random_schedules_never_desync(
        n in 2_u64..10,
        gap_s in 20.0_f64..400.0,
        mtbf_s in 4_000.0_f64..40_000.0,
        fault_seed in 0_u64..1_000,
    ) {
        let jobs = mixed_trace(n, gap_s);
        let mut fault_cfg = arena::trace::FaultConfig::with_mtbf(mtbf_s);
        fault_cfg.seed = fault_seed;
        let horizon_s = 12.0 * 3600.0;
        let faults = arena::trace::generate_faults(&fault_cfg, &[16, 16], horizon_s);
        let cfg = SimConfig::new(horizon_s);
        let cluster = arena::cluster::presets::physical_testbed();
        let run = |engine_new: bool| {
            let service = PlanService::new(&cluster, CostParams::default(), 17);
            let mut policy = FcfsPolicy::new();
            let r = if engine_new {
                simulate_with_faults(&cluster, &jobs, &mut policy, &service, &cfg, &faults)
            } else {
                reference::simulate_with_faults(&cluster, &jobs, &mut policy, &service, &cfg, &faults)
            };
            fingerprint(r)
        };
        prop_assert_eq!(run(true), run(false));
    }
}
