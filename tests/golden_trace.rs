//! Golden-trace harness for the observability layer.
//!
//! Three contracts, over a small deterministic testbed workload:
//!
//! 1. **Golden snapshots** — each policy's decision provenance
//!    (counts per `kind/reason`, first/last decisions including their
//!    home-shard stamps) matches the committed snapshot under
//!    `tests/snapshots/`. Regenerate after an intended behaviour change
//!    with `UPDATE_SNAPSHOTS=1 cargo test` (the older `UPDATE_GOLDEN=1`
//!    spelling still works).
//! 2. **Tracing neutrality** — enabling the tracer changes no simulator
//!    output: timelines and metrics are bitwise identical to an untraced
//!    run (only the wall-clock decision timer is exempt).
//! 3. **Conformance** — every `Place` / `Drop` action a policy returns
//!    has exactly one matching [`Decision`] recorded in the same pass.

use std::path::PathBuf;

use arena::prelude::*;
use arena::sched::{Action, PlanMode, SchedEvent, SchedView};

fn small_trace(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: 120.0 * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 2500 + 600 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

/// The comparison set with execution knobs pinned: `ArenaPolicy::new()`
/// reads `ARENA_WORKER_THREADS` from the environment, and golden
/// snapshots must not depend on what the test runner happens to have
/// exported, so the worker count is fixed to 1 here.
fn policy_set() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(FcfsPolicy::new()),
        Box::new(GandivaPolicy::new()),
        Box::new(GavelPolicy::new()),
        Box::new(ElasticFlowPolicy::loosened()),
        Box::new(ArenaPolicy::new().with_worker_threads(1)),
    ]
}

fn run_traced(policy: &mut dyn Policy, obs: &Obs) -> SimResult {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 33);
    let cfg = SimConfig::new(24.0 * 3600.0);
    simulate_traced(&cluster, &small_trace(16), policy, &service, &cfg, obs)
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

fn snapshot_path(policy: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("trace_{}.txt", slug(policy)))
}

#[test]
fn golden_decision_traces_match_snapshots() {
    let update =
        std::env::var("UPDATE_SNAPSHOTS").is_ok() || std::env::var("UPDATE_GOLDEN").is_ok();
    for mut p in policy_set() {
        let obs = Obs::enabled();
        let r = run_traced(p.as_mut(), &obs);
        assert!(
            !r.trace.decisions.is_empty(),
            "{}: traced run recorded no decisions",
            r.policy
        );
        // Placement provenance carries the job's home shard, and it
        // survives into the snapshot's compact decision lines.
        assert!(
            r.trace
                .decisions
                .iter()
                .filter(|d| d.kind == DecisionKind::Place)
                .all(|d| d.shard.is_some()),
            "{}: placement decision missing home-shard stamp",
            r.policy
        );
        let got = r.trace.golden_summary(5);
        assert!(
            got.contains("shard="),
            "{}: snapshot lost shard provenance",
            r.policy
        );
        let path = snapshot_path(&r.policy);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing snapshot {path:?} ({e}); regenerate with UPDATE_SNAPSHOTS=1")
        });
        assert_eq!(
            got, want,
            "{}: golden trace drifted; if the change is intended, \
             regenerate with UPDATE_SNAPSHOTS=1 cargo test",
            r.policy
        );
    }
}

#[test]
fn tracing_does_not_change_simulator_output() {
    for (mut traced, mut plain) in policy_set().into_iter().zip(policy_set()) {
        let obs = Obs::enabled();
        let a = run_traced(traced.as_mut(), &obs);
        let b = run_traced(plain.as_mut(), &Obs::disabled());
        assert!(!a.trace.decisions.is_empty() || a.records.is_empty());
        assert!(b.trace.is_empty(), "disabled run must record nothing");
        assert_eq!(a.timeline, b.timeline, "{}: timeline drift", a.policy);
        assert_eq!(a.raw_timeline, b.raw_timeline);
        for (ra, rb) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.start_s, rb.start_s);
            assert_eq!(ra.finish_s, rb.finish_s);
            assert_eq!(ra.restarts, rb.restarts);
            assert_eq!(ra.dropped, rb.dropped);
        }
        // Every metric except the wall-clock decision timer is bitwise
        // equal (same exemption as the fault determinism test).
        let (mut ma, mut mb) = (a.metrics.clone(), b.metrics.clone());
        ma.avg_decision_s = 0.0;
        mb.avg_decision_s = 0.0;
        assert_eq!(
            format!("{ma:?}"),
            format!("{mb:?}"),
            "{}: tracing changed metrics",
            a.policy
        );
    }
}

/// Wraps a policy and asserts, on every pass, that each `Place` / `Drop`
/// action it returns has exactly one matching decision recorded during
/// that pass.
struct AssertingPolicy {
    inner: Box<dyn Policy>,
    matched: usize,
}

impl Policy for AssertingPolicy {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn plan_mode(&self) -> PlanMode {
        self.inner.plan_mode()
    }

    fn schedule(&mut self, event: SchedEvent, view: &SchedView<'_>) -> Vec<Action> {
        let before = view.obs.decision_count();
        let actions = self.inner.schedule(event, view);
        let new = view.obs.decisions_after(before);
        for a in &actions {
            match *a {
                Action::Place {
                    job,
                    pool,
                    gpus,
                    opportunistic,
                } => {
                    let n = new
                        .iter()
                        .filter(|d| {
                            d.kind == DecisionKind::Place
                                && d.job == job
                                && d.pool == Some(pool.0)
                                && d.gpus == Some(gpus)
                                && d.opportunistic == opportunistic
                        })
                        .count();
                    assert_eq!(
                        n,
                        1,
                        "{}: Place(job {job}, pool {}, {gpus} GPUs) has {n} \
                         matching decisions among {new:#?}",
                        self.inner.name(),
                        pool.0
                    );
                    self.matched += 1;
                }
                Action::Drop { job } => {
                    let n = new
                        .iter()
                        .filter(|d| d.kind == DecisionKind::Drop && d.job == job)
                        .count();
                    assert_eq!(
                        n,
                        1,
                        "{}: Drop(job {job}) has {n} matching decisions",
                        self.inner.name()
                    );
                    self.matched += 1;
                }
                Action::Evict { .. } => {}
            }
        }
        actions
    }
}

#[test]
fn every_place_and_drop_action_has_exactly_one_decision() {
    for inner in policy_set() {
        let mut p = AssertingPolicy { inner, matched: 0 };
        let obs = Obs::enabled();
        let r = run_traced(&mut p, &obs);
        assert!(
            p.matched > 0,
            "{}: conformance check never fired (no place/drop actions)",
            r.policy
        );
        assert!(!r.trace.decisions.is_empty());
    }
}

#[test]
fn decision_log_exports_one_json_object_per_decision() {
    let obs = Obs::enabled();
    let r = run_traced(&mut ArenaPolicy::new().with_worker_threads(1), &obs);
    let jsonl = r.trace.decisions_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), r.trace.decisions.len());
    for line in lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line {line}"
        );
        let v: serde::Value = serde_json::from_str(line).expect("valid JSON");
        let fields = v.as_object().expect("decision is a JSON object");
        assert!(fields.iter().any(|(k, _)| k == "seq"));
        assert!(fields.iter().any(|(k, _)| k == "reason"));
    }
}
