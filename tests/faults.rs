//! Fault-injection hardening: health-aware allocator invariants, bitwise
//! determinism of faulty simulations, and the policy conformance matrix
//! under node failures.

use proptest::prelude::*;

use arena::cluster::{Allocation, Cluster, GpuSpec, GpuTypeId, NodeHealth, NodeSpec};
use arena::prelude::*;
use arena::sim::{
    simulate_sharded_with_faults_traced, simulate_with_faults, simulate_with_faults_traced,
};
use arena::trace::{generate_faults, FaultConfig, FaultEvent, FaultKind};

fn two_pool_cluster() -> Cluster {
    Cluster::new(&[
        (NodeSpec::with_default_links(GpuSpec::A100, 4), 3),
        (NodeSpec::with_default_links(GpuSpec::A10, 2), 4),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of allocate / release / fail_node / repair_node
    /// conserves GPUs (free + allocated + failed == capacity per pool)
    /// and never grants an allocation touching a failed node.
    #[test]
    fn health_books_balance(ops in proptest::collection::vec((0_usize..4, 0_usize..24), 1..80)) {
        let mut cluster = two_pool_cluster();
        let totals = [12_usize, 8];
        let nodes = [3_usize, 4];
        let mut live: Vec<Allocation> = Vec::new();
        for (sel, n) in ops {
            match sel {
                0 | 1 => {
                    let pool = GpuTypeId(sel);
                    let want = n % 8 + 1;
                    match cluster.allocate(pool, want) {
                        Ok(a) => {
                            prop_assert_eq!(a.total_gpus(), want);
                            // Grants never touch non-healthy nodes.
                            for &(node, _) in &a.node_gpus {
                                prop_assert_eq!(
                                    cluster.node_health(pool, node).unwrap(),
                                    NodeHealth::Healthy
                                );
                            }
                            live.push(a);
                        }
                        Err(_) => {
                            // May only fail when healthy capacity is short.
                            prop_assert!(cluster.free_gpus(pool) < want);
                        }
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let a = live.swap_remove(n % live.len());
                        cluster.release(&a).expect("release succeeds");
                    }
                }
                _ => {
                    let pool = GpuTypeId(n % 2);
                    let node = n % nodes[pool.0];
                    match cluster.node_health(pool, node).unwrap() {
                        NodeHealth::Healthy => cluster.fail_node(pool, node).unwrap(),
                        _ => cluster.repair_node(pool, node).unwrap(),
                    }
                }
            }
            // Conservation holds after every operation.
            for (i, &total) in totals.iter().enumerate() {
                let id = GpuTypeId(i);
                prop_assert_eq!(
                    cluster.free_gpus(id) + cluster.used_gpus(id) + cluster.failed_gpus(id),
                    total
                );
            }
        }
        // Releasing everything and repairing all nodes restores capacity.
        for a in live.drain(..) {
            cluster.release(&a).expect("final release");
        }
        for (i, &count) in nodes.iter().enumerate() {
            for node in 0..count {
                let _ = cluster.repair_node(GpuTypeId(i), node);
            }
        }
        for (i, &total) in totals.iter().enumerate() {
            prop_assert_eq!(cluster.free_gpus(GpuTypeId(i)), total);
        }
    }
}

fn small_trace(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: 60.0 * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 150 + 40 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

fn testbed_faults(horizon_s: f64) -> Vec<FaultEvent> {
    let mut cfg = FaultConfig::with_mtbf(4.0 * 3600.0);
    cfg.repair_median_s = 900.0;
    generate_faults(&cfg, &[16, 16], horizon_s)
}

#[test]
fn faulty_simulation_is_bitwise_deterministic() {
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = small_trace(10);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let faults = testbed_faults(cfg.horizon_s);
    assert!(
        faults.iter().any(|f| f.kind == FaultKind::Failure),
        "fault schedule is empty"
    );
    let run = || {
        let service = PlanService::new(&cluster, CostParams::default(), 77);
        simulate_with_faults(
            &cluster,
            &jobs,
            &mut ArenaPolicy::new(),
            &service,
            &cfg,
            &faults,
        )
    };
    let (a, b) = (run(), run());
    // Timelines and per-job lifecycles must be identical to the bit.
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.raw_timeline, b.raw_timeline);
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.start_s, rb.start_s);
        assert_eq!(ra.finish_s, rb.finish_s);
        assert_eq!(ra.restarts, rb.restarts, "job {} restarts differ", ra.id);
        assert_eq!(ra.dropped, rb.dropped);
    }
    // Every metric except the wall-clock decision timer is bitwise equal.
    let (mut ma, mut mb) = (a.metrics.clone(), b.metrics.clone());
    ma.avg_decision_s = 0.0;
    mb.avg_decision_s = 0.0;
    assert_eq!(format!("{ma:?}"), format!("{mb:?}"));
}

#[test]
fn all_policies_survive_node_failures() {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 2);
    let jobs = small_trace(12);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let faults = testbed_faults(cfg.horizon_s);

    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(FcfsPolicy::new()),
        Box::new(GandivaPolicy::new()),
        Box::new(GavelPolicy::new()),
        Box::new(ElasticFlowPolicy::loosened()),
        Box::new(ArenaPolicy::new()),
    ];
    for mut p in policies {
        let r = simulate_with_faults(&cluster, &jobs, p.as_mut(), &service, &cfg, &faults);
        let m = &r.metrics;
        assert_eq!(
            m.finished + m.dropped + m.unfinished,
            jobs.len(),
            "{} lost jobs under faults",
            r.policy
        );
        assert_eq!(r.records.len(), jobs.len());
        assert!(
            m.work_lost_frac.is_finite() && m.work_lost_frac >= 0.0,
            "{}: bad work_lost_frac",
            r.policy
        );
        assert!(m.goodput_sps.is_finite() && m.goodput_sps >= 0.0);
        for rec in &r.records {
            if let (Some(q), Some(j)) = (rec.queue_s(), rec.jct_s()) {
                assert!(
                    q >= 0.0 && q <= j + 1e-6,
                    "{}: queue {q} > jct {j}",
                    r.policy
                );
            }
        }
    }
}

#[test]
fn zero_fault_schedule_reproduces_baseline() {
    // The fault-aware entry point with an empty schedule must match
    // `simulate` exactly — the seed experiments stay unchanged.
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = small_trace(8);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let service = PlanService::new(&cluster, CostParams::default(), 5);
    let base = simulate(&cluster, &jobs, &mut ArenaPolicy::new(), &service, &cfg);
    let service2 = PlanService::new(&cluster, CostParams::default(), 5);
    let faulty = simulate_with_faults(
        &cluster,
        &jobs,
        &mut ArenaPolicy::new(),
        &service2,
        &cfg,
        &[],
    );
    assert_eq!(base.timeline, faulty.timeline);
    assert_eq!(base.metrics.avg_jct_s, faulty.metrics.avg_jct_s);
    assert_eq!(base.metrics.finished, faulty.metrics.finished);
    assert_eq!(faulty.metrics.failure_evictions, 0);
    assert_eq!(faulty.metrics.work_lost_frac, 0.0);
}

#[test]
fn failures_cost_real_progress() {
    // A mid-run cluster-wide outage must show up in the fault metrics:
    // evictions, lost work, recovery latency — and still finish the jobs.
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 2);
    let jobs = small_trace(6);
    let mut cfg = SimConfig::new(24.0 * 3600.0);
    cfg.checkpoint_interval_s = f64::INFINITY;
    let mut faults: Vec<FaultEvent> = (0..16)
        .map(|n| FaultEvent {
            time_s: 1500.0,
            pool: 0,
            node: n,
            kind: FaultKind::Failure,
        })
        .collect();
    faults.extend((0..16).map(|n| FaultEvent {
        time_s: 6000.0,
        pool: 0,
        node: n,
        kind: FaultKind::Repair,
    }));
    let r = simulate_with_faults(
        &cluster,
        &jobs,
        &mut GavelPolicy::new(),
        &service,
        &cfg,
        &faults,
    );
    assert!(r.metrics.failure_evictions > 0, "{:#?}", r.records);
    assert!(r.metrics.mean_recovery_s > 0.0);
    assert_eq!(
        r.metrics.finished + r.metrics.dropped + r.metrics.unfinished,
        jobs.len()
    );
}

#[test]
fn fault_evictions_carry_decision_provenance() {
    // A traced faulty run must attribute every failure eviction to an
    // engine-originated requeue decision, stamped with the node-failure
    // trigger — and the decision log must agree with the fault metrics.
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 2);
    let jobs = small_trace(6);
    let mut cfg = SimConfig::new(24.0 * 3600.0);
    cfg.checkpoint_interval_s = f64::INFINITY;
    let mut faults: Vec<FaultEvent> = (0..16)
        .map(|n| FaultEvent {
            time_s: 1500.0,
            pool: 0,
            node: n,
            kind: FaultKind::Failure,
        })
        .collect();
    faults.extend((0..16).map(|n| FaultEvent {
        time_s: 6000.0,
        pool: 0,
        node: n,
        kind: FaultKind::Repair,
    }));
    let obs = Obs::enabled();
    let r = simulate_with_faults_traced(
        &cluster,
        &jobs,
        &mut GavelPolicy::new(),
        &service,
        &cfg,
        &faults,
        &obs,
    );
    assert!(r.metrics.failure_evictions > 0);

    let failure_requeues: Vec<&Decision> = r
        .trace
        .decisions
        .iter()
        .filter(|d| d.kind == DecisionKind::Requeue && d.reason == "node-failure-evict")
        .collect();
    assert_eq!(
        failure_requeues.len(),
        r.metrics.failure_evictions,
        "decision log disagrees with fault metrics"
    );
    for d in &failure_requeues {
        assert_eq!(d.policy, "engine", "fault evictions are engine-originated");
        assert_eq!(d.trigger, "node-failure");
        assert!(jobs.iter().any(|j| j.id == d.job), "unknown job {}", d.job);
    }
    // The engine's fault counters line up with the schedule. (Repairs
    // are scheduled after the failures; the loop may legitimately end —
    // all jobs terminal — before processing them all.)
    assert_eq!(r.trace.counters.get("sim.fault.failure"), Some(&16));
    assert!(
        r.trace
            .counters
            .get("sim.fault.repair")
            .copied()
            .unwrap_or(0)
            <= 16
    );
    // Requeue provenance is engine-only: it never pollutes the policy's
    // place/drop decision stream.
    assert!(r
        .trace
        .decisions
        .iter()
        .filter(|d| d.policy == "engine")
        .all(|d| d.kind == DecisionKind::Requeue));
}

#[test]
fn fault_provenance_identical_under_sharding() {
    // The same mid-run outage, run through the sharded decision loop at
    // several shard counts: node failures land mid-merge-round (victims
    // are detected per shard, applied in merged submission order), yet
    // every requeue decision — job, reason, trigger, shard stamp, and
    // position in the decision stream — must match the serial engine's.
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = small_trace(6);
    let mut cfg = SimConfig::new(24.0 * 3600.0);
    cfg.checkpoint_interval_s = f64::INFINITY;
    let mut faults: Vec<FaultEvent> = (0..16)
        .map(|n| FaultEvent {
            time_s: 1500.0,
            pool: 0,
            node: n,
            kind: FaultKind::Failure,
        })
        .collect();
    faults.extend((0..16).map(|n| FaultEvent {
        time_s: 6000.0,
        pool: 0,
        node: n,
        kind: FaultKind::Repair,
    }));
    let serial = {
        let service = PlanService::new(&cluster, CostParams::default(), 2);
        let obs = Obs::enabled();
        simulate_with_faults_traced(
            &cluster,
            &jobs,
            &mut GavelPolicy::new(),
            &service,
            &cfg,
            &faults,
            &obs,
        )
    };
    assert!(
        serial.metrics.failure_evictions > 0,
        "fixture lost its bite"
    );
    for shards in [1_usize, 2, 4, 8] {
        let service = PlanService::new(&cluster, CostParams::default(), 2);
        let obs = Obs::enabled();
        let plan = ShardPlan::per_pool(&cluster)
            .with_shards(shards)
            .with_workers(WorkerPool::new(2));
        let sharded = simulate_sharded_with_faults_traced(
            &cluster,
            &jobs,
            &mut GavelPolicy::new(),
            &service,
            &cfg,
            &faults,
            &obs,
            &plan,
        );
        // The whole decision stream — not just the requeues — agrees
        // line-for-line, so ordering around the fault is preserved too.
        assert_eq!(
            sharded.trace.decisions_jsonl(),
            serial.trace.decisions_jsonl(),
            "decision stream diverged at {shards} shards"
        );
        assert_eq!(
            sharded.metrics.failure_evictions,
            serial.metrics.failure_evictions
        );
        assert_eq!(sharded.trace.counters.get("sim.fault.failure"), Some(&16));
        // Failure requeues keep their engine provenance and carry the
        // victim's home-partition stamp.
        let requeues: Vec<&Decision> = sharded
            .trace
            .decisions
            .iter()
            .filter(|d| d.kind == DecisionKind::Requeue && d.reason == "node-failure-evict")
            .collect();
        assert_eq!(requeues.len(), sharded.metrics.failure_evictions);
        for d in &requeues {
            assert_eq!(d.policy, "engine");
            assert_eq!(d.trigger, "node-failure");
            let spec = jobs.iter().find(|j| j.id == d.job).expect("known job");
            assert_eq!(d.shard, Some(spec.requested_pool as u32));
        }
    }
}
