//! Cross-crate integration tests: the full estimate → tune → schedule →
//! simulate pipeline on small but real configurations.

use arena::estimator::Cell;
use arena::prelude::*;
use arena::sched::{ArenaSolverPolicy, QueueOrder};
use arena::tuner::{tune_full, tune_pruned};

fn small_trace(n: u64) -> Vec<JobSpec> {
    let mk = |id: u64, submit: f64, fam, size, gpus: usize, pool: usize, iters: u64| JobSpec {
        id,
        name: format!("j{id}"),
        submit_s: submit,
        model: ModelConfig::new(fam, size, 256),
        iterations: iters,
        requested_gpus: gpus,
        requested_pool: pool,
        deadline_s: None,
    };
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            mk(
                i,
                60.0 * i as f64,
                fam,
                size,
                [2, 4, 8][(i % 3) as usize],
                (i % 2) as usize,
                150 + 40 * (i % 4),
            )
        })
        .collect()
}

#[test]
fn full_pipeline_estimate_tune_run() {
    // Estimate a Cell, tune it, and confirm the tuned plan's measured
    // performance is close to the exhaustive optimum — the paper's core
    // correctness claim, end to end.
    let params = CostParams::default();
    let gt = GroundTruth::new(params.clone(), 1);
    let est = CellEstimator::new(params, 1);
    let model = ModelConfig::new(ModelFamily::Moe, 2.4, 512);
    let graph = model.build();
    let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));

    let (cell, e) = Cell::generate(&graph, 8)
        .into_iter()
        .filter_map(|c| est.estimate(&graph, 512, &c, &hw).map(|e| (c, e)))
        .max_by(|a, b| a.1.throughput_sps.partial_cmp(&b.1.throughput_sps).unwrap())
        .expect("feasible cell");

    let pruned = tune_pruned(&gt, &graph, 512, &cell, &e, &hw).expect("pruned tunes");
    let full = tune_full(
        &GroundTruth::new(gt.params().clone(), 1),
        &graph,
        512,
        &cell,
        &hw,
    )
    .expect("full tunes");

    let accuracy = pruned.perf.throughput_sps / full.perf.throughput_sps;
    assert!(accuracy > 0.85, "tuning accuracy {accuracy}");
    assert!(pruned.trials <= full.trials);
    // The estimate itself is in the right ballpark of the tuned truth.
    let est_err =
        (e.throughput_sps - pruned.perf.throughput_sps).abs() / pruned.perf.throughput_sps;
    assert!(est_err < 0.35, "estimate error {est_err}");
}

#[test]
fn all_policies_conserve_jobs_and_capacity() {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 2);
    let jobs = small_trace(12);
    let cfg = SimConfig::new(24.0 * 3600.0);

    let policies: Vec<fn() -> Box<dyn Policy>> = vec![
        || Box::new(FcfsPolicy::new()),
        || Box::new(GandivaPolicy::new()),
        || Box::new(GavelPolicy::new()),
        || Box::new(ElasticFlowPolicy::loosened()),
        || Box::new(ArenaPolicy::new()),
        || Box::new(ArenaSolverPolicy::new()),
        || Box::new(ArenaPolicy::new().with_queue_order(QueueOrder::ShortestFirst)),
    ];
    // Every policy runs through both decision loops: the serial
    // event-indexed engine and the sharded loop under the env-driven
    // plan (the CI matrix varies ARENA_SHARDS), which must agree.
    let plan = ShardPlan::from_env(&cluster);
    for make in policies {
        let mut p = make();
        let r = simulate(&cluster, &jobs, p.as_mut(), &service, &cfg);
        let m = &r.metrics;
        assert_eq!(
            m.finished + m.dropped + m.unfinished,
            jobs.len(),
            "{} lost jobs",
            r.policy
        );
        assert_eq!(r.records.len(), jobs.len());
        for rec in &r.records {
            if let (Some(q), Some(j)) = (rec.queue_s(), rec.jct_s()) {
                assert!(
                    q >= 0.0 && q <= j + 1e-6,
                    "{}: queue {q} > jct {j}",
                    r.policy
                );
            }
        }
        let mut again = make();
        let service2 = PlanService::new(&cluster, CostParams::default(), 2);
        let s = simulate_sharded(&cluster, &jobs, again.as_mut(), &service2, &cfg, &plan);
        assert_eq!(s.metrics.finished, m.finished, "{} sharded drift", r.policy);
        assert_eq!(s.metrics.dropped, m.dropped);
        assert_eq!(
            s.timeline, r.timeline,
            "{} sharded timeline drift",
            r.policy
        );
    }
}

#[test]
fn arena_beats_fcfs_under_contention() {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 3);
    // Compress arrivals so the queue builds up.
    let mut jobs = small_trace(10);
    for j in &mut jobs {
        j.submit_s /= 6.0;
    }
    let cfg = SimConfig::new(24.0 * 3600.0);

    let fcfs = simulate(&cluster, &jobs, &mut FcfsPolicy::new(), &service, &cfg);
    let arena = simulate(&cluster, &jobs, &mut ArenaPolicy::new(), &service, &cfg);
    assert!(arena.metrics.finished >= fcfs.metrics.finished);
    assert!(
        arena.metrics.avg_jct_s <= fcfs.metrics.avg_jct_s * 1.05,
        "arena {} vs fcfs {}",
        arena.metrics.avg_jct_s,
        fcfs.metrics.avg_jct_s
    );
}

#[test]
fn memory_cliff_is_pool_dependent() {
    // The Fig. 1 Case-B asymmetry end-to-end: BERT-6.7B has no feasible
    // plan on 4 x 24 GiB Ampere-PCIe but runs on 4 x V100-NVLink.
    let cluster = arena::cluster::Cluster::new(&[
        (NodeSpec::with_default_links(GpuSpec::A10, 4), 1),
        (NodeSpec::with_default_links(GpuSpec::V100, 4), 1),
    ]);
    let service = PlanService::new(&cluster, CostParams::default(), 4);
    let bert = ModelConfig::new(ModelFamily::Bert, 6.7, 128);
    assert!(service.adaptive_run(&bert, 4, GpuTypeId(0)).is_none());
    assert!(service.adaptive_run(&bert, 4, GpuTypeId(1)).is_some());
}

#[test]
fn deadline_variant_drops_hopeless_and_meets_more() {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 5);
    let mut jobs = small_trace(8);
    for (i, j) in jobs.iter_mut().enumerate() {
        // Half get generous deadlines, half impossible ones.
        j.deadline_s = Some(if i % 2 == 0 {
            j.submit_s + 48.0 * 3600.0
        } else {
            j.submit_s + 1.0
        });
    }
    let cfg = SimConfig::new(24.0 * 3600.0);
    let mut ddl = ArenaPolicy::with_variant(ArenaVariant::Deadline);
    let r = simulate(&cluster, &jobs, &mut ddl, &service, &cfg);
    assert!(r.metrics.dropped >= 4, "hopeless jobs were not dropped");
    // Every finished job with a generous deadline met it.
    for rec in &r.records {
        if rec.finish_s.is_some() {
            assert_eq!(rec.deadline_met, Some(true), "{} missed", rec.name);
        }
    }
}

#[test]
fn trace_serialises_to_json() {
    let jobs = small_trace(3);
    let body = serde_json::to_string_pretty(&jobs).expect("serialise");
    assert!(body.contains("requested_gpus"));
    assert!(body.contains("BERT") || body.contains("params_b"));
}

#[test]
fn simulation_results_are_reproducible_across_services() {
    // Two independently constructed services with the same seed must
    // produce identical simulations (full determinism).
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = small_trace(6);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let run = || {
        let service = PlanService::new(&cluster, CostParams::default(), 77);
        simulate(&cluster, &jobs, &mut ArenaPolicy::new(), &service, &cfg)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.metrics.avg_jct_s, b.metrics.avg_jct_s);
    assert_eq!(a.metrics.finished, b.metrics.finished);
    assert_eq!(a.timeline, b.timeline);
    // The sharded loop under the env-driven plan reproduces the same
    // run, bit for bit.
    let service = PlanService::new(&cluster, CostParams::default(), 77);
    let plan = ShardPlan::from_env(&cluster);
    let s = simulate_sharded(
        &cluster,
        &jobs,
        &mut ArenaPolicy::new(),
        &service,
        &cfg,
        &plan,
    );
    assert_eq!(s.metrics.avg_jct_s, a.metrics.avg_jct_s);
    assert_eq!(s.timeline, a.timeline);
}
