//! Streaming-vs-resident identity: the fleet-scale streaming driver
//! (`simulate_stream_with_faults` — pull-based arrivals, record-fold
//! engine, reclaimed job slots) must schedule *byte-identically* to the
//! batch driver that materialises the whole trace. These tests pin the
//! identity across every comparison policy, shard counts 1 and 4, and
//! faulted/unfaulted schedules, plus the memory-budget contract: cache
//! eviction under an arbitrarily tiny `set_mem_budget` is semantically
//! invisible — it forces recomputation, never a different answer.
//!
//! What "identical" means here: the order-free record fingerprint, both
//! throughput timelines and every integer counter are exact equality;
//! floating-point *sums* (avg JCT) agree only to rounding, because the
//! streaming engine folds records in termination order while the batch
//! driver folds the submission-ordered record vector (see
//! `FoldedRecords`).

use arena::prelude::*;
use arena::sched::{policy_by_name, POLICY_NAMES};
use arena::sim::record_fingerprint;
use arena::trace::{FaultEvent, FaultKind, VecSource};
use proptest::prelude::*;

fn mixed_trace(n: u64, gap_s: f64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 300 + 150 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

fn fault_schedule() -> Vec<FaultEvent> {
    vec![
        FaultEvent {
            time_s: 500.0,
            pool: 0,
            node: 0,
            kind: FaultKind::Failure,
        },
        FaultEvent {
            time_s: 1500.0,
            pool: 1,
            node: 1,
            kind: FaultKind::Failure,
        },
        FaultEvent {
            time_s: 5000.0,
            pool: 0,
            node: 0,
            kind: FaultKind::Repair,
        },
        FaultEvent {
            time_s: 9000.0,
            pool: 1,
            node: 1,
            kind: FaultKind::Repair,
        },
    ]
}

/// Runs one (policy, shard count, fault schedule) scenario both ways
/// and asserts the streaming summary reproduces the resident run.
fn assert_stream_matches_batch(
    policy_name: &str,
    shards: usize,
    jobs: &[JobSpec],
    faults: &[FaultEvent],
) {
    let cluster = arena::cluster::presets::physical_testbed();
    let cfg = SimConfig::new(48.0 * 3600.0);
    let plan = ShardPlan::per_pool(&cluster).with_shards(shards);

    let batch = {
        let service = PlanService::new(&cluster, CostParams::default(), 17);
        let mut policy = policy_by_name(policy_name, 1).expect("known policy");
        simulate_sharded_with_faults(
            &cluster,
            jobs,
            policy.as_mut(),
            &service,
            &cfg,
            faults,
            &plan,
        )
    };
    let stream = {
        let service = PlanService::new(&cluster, CostParams::default(), 17);
        let mut policy = policy_by_name(policy_name, 1).expect("known policy");
        simulate_stream_with_faults(
            &cluster,
            policy.as_mut(),
            &service,
            &mut VecSource::new(jobs.to_vec()),
            faults,
            &cfg,
            &Obs::disabled(),
            &plan,
        )
        .expect("in-memory source cannot fail")
    };

    let ctx = format!(
        "policy={policy_name} shards={shards} faults={}",
        faults.len()
    );
    assert_eq!(
        stream.fingerprint,
        record_fingerprint(&batch.records),
        "record fingerprint diverged ({ctx})"
    );
    assert_eq!(stream.timeline, batch.timeline, "timeline diverged ({ctx})");
    assert_eq!(
        stream.raw_timeline, batch.raw_timeline,
        "raw timeline diverged ({ctx})"
    );
    assert_eq!(stream.jobs.jobs as usize, batch.records.len(), "{ctx}");
    assert_eq!(stream.jobs.finished, batch.metrics.finished as u64, "{ctx}");
    assert_eq!(stream.jobs.dropped, batch.metrics.dropped as u64, "{ctx}");
    assert_eq!(
        stream.failure_evictions, batch.metrics.failure_evictions,
        "{ctx}"
    );
    assert_eq!(stream.goodput_sps, batch.metrics.goodput_sps, "{ctx}");
    // Float sums fold in termination order, not record order, so they
    // agree only up to rounding; everything above is exact.
    let jct_err = (stream.jobs.avg_jct_s() - batch.metrics.avg_jct_s).abs();
    assert!(jct_err < 1e-6, "avg JCT drifted by {jct_err} ({ctx})");
}

/// The tentpole matrix: every comparison policy, shard counts 1 and 4,
/// fault-free.
#[test]
fn streaming_identity_all_policies_unfaulted() {
    let jobs = mixed_trace(36, 200.0);
    for name in POLICY_NAMES {
        for shards in [1_usize, 4] {
            assert_stream_matches_batch(name, shards, &jobs, &[]);
        }
    }
}

/// Same matrix under a four-event failure/repair schedule that lands
/// mid-trace on both pools.
#[test]
fn streaming_identity_all_policies_faulted() {
    let jobs = mixed_trace(36, 200.0);
    let faults = fault_schedule();
    for name in POLICY_NAMES {
        for shards in [1_usize, 4] {
            assert_stream_matches_batch(name, shards, &jobs, &faults);
        }
    }
}

/// Runs the streaming driver with the given cache budget (None =
/// unlimited) and returns the summary plus the total evictions the
/// budgeted maps performed.
fn run_with_budget(
    jobs: &[JobSpec],
    budget: Option<usize>,
    policy_name: &str,
) -> (StreamSummary, u64) {
    let cluster = arena::cluster::presets::physical_testbed();
    let cfg = SimConfig::new(48.0 * 3600.0);
    let plan = ShardPlan::per_pool(&cluster);
    let service = PlanService::new(&cluster, CostParams::default(), 17);
    service.set_mem_budget(budget);
    service.estimator().set_mem_budget(budget);
    let mut policy = policy_by_name(policy_name, 1).expect("known policy");
    let summary = simulate_stream(
        &cluster,
        policy.as_mut(),
        &service,
        &mut VecSource::new(jobs.to_vec()),
        &cfg,
        &plan,
    )
    .expect("in-memory source cannot fail");
    let evictions = service
        .mem_report()
        .iter()
        .chain(service.estimator().mem_report().iter())
        .map(|s| s.evictions)
        .sum();
    (summary, evictions)
}

/// Deterministic vacuousness guard for the property below: a byte-scale
/// budget on a real trace must actually evict — and still reproduce the
/// unbudgeted run exactly.
#[test]
fn tiny_budget_evicts_without_changing_output() {
    let jobs = mixed_trace(24, 300.0);
    let (free, _) = run_with_budget(&jobs, None, "arena");
    let (tight, evictions) = run_with_budget(&jobs, Some(2048), "arena");
    assert!(evictions > 0, "2 KiB budget never evicted: vacuous test");
    assert_eq!(free.fingerprint, tight.fingerprint);
    assert_eq!(free.timeline, tight.timeline);
    assert_eq!(free.raw_timeline, tight.raw_timeline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache eviction is semantically invisible at *any* budget: a run
    /// whose plan/estimator caches are squeezed to a few hundred bytes
    /// schedules exactly like an unbudgeted one. Eviction may only cost
    /// recomputation, never change an answer.
    #[test]
    fn budget_eviction_never_changes_scheduling(
        budget in 256_usize..16_384,
        n in 8_u64..28,
        gap in 150_u64..600,
        policy_ix in 0_usize..POLICY_NAMES.len(),
    ) {
        let jobs = mixed_trace(n, gap as f64);
        let name = POLICY_NAMES[policy_ix];
        let (free, _) = run_with_budget(&jobs, None, name);
        let (tight, _) = run_with_budget(&jobs, Some(budget), name);
        prop_assert_eq!(free.fingerprint, tight.fingerprint);
        prop_assert_eq!(free.timeline, tight.timeline);
        prop_assert_eq!(free.raw_timeline, tight.raw_timeline);
        prop_assert_eq!(free.jobs.finished, tight.jobs.finished);
        prop_assert_eq!(free.jobs.dropped, tight.jobs.dropped);
    }
}
