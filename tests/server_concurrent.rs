//! Concurrent snapshot readers against a draining decision loop.
//!
//! N query threads hammer the RCU snapshot hub while the daemon drains
//! a loaded trace. Every snapshot a reader observes must be internally
//! consistent — the conservation invariants hold on each one, because a
//! snapshot is built by the single writer between two bursts and never
//! mutated after publication — and the sequence numbers each thread
//! observes must be monotone (RCU readers can lag, never go back).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use arena::prelude::*;
use arena_server::protocol::submit_line;
use arena_server::{Server, ServerConfig, ServerSnapshot};

fn mixed_trace(n: u64, gap_s: f64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 600 + 150 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

/// The conservation invariants from `tests/properties.rs`, applied to
/// one published snapshot.
fn assert_consistent(s: &ServerSnapshot) {
    let st = &s.state;
    assert_eq!(
        st.submitted,
        st.pending + st.queued + st.starting + st.running + st.finished + st.dropped,
        "job conservation violated on snapshot seq {}",
        s.seq
    );
    // Job list agrees with the scalar counts.
    assert_eq!(
        st.jobs.len(),
        st.submitted,
        "job list drifted (seq {})",
        s.seq
    );
    let held: usize = st
        .jobs
        .iter()
        .filter(|j| matches!(j.phase.label(), "starting" | "running"))
        .map(|j| j.gpus)
        .sum();
    let used: usize = st.pools.iter().map(|p| p.used_gpus).sum();
    assert_eq!(
        held, used,
        "GPU books disagree with job table (seq {})",
        s.seq
    );
    for p in &st.pools {
        assert_eq!(
            p.free_gpus + p.used_gpus + p.failed_gpus,
            p.total_gpus,
            "pool {} books do not balance (seq {})",
            p.pool,
            s.seq
        );
    }
    // Terminal jobs hold nothing.
    for j in &st.jobs {
        if matches!(j.phase.label(), "finished" | "dropped") {
            assert_eq!(
                j.gpus, 0,
                "terminal job {} holds GPUs (seq {})",
                j.id, s.seq
            );
        }
    }
    // The decision mirror is a prefix-consistent chunk list: strictly
    // increasing seq numbers across chunk boundaries.
    let mut expect = 0u64;
    for chunk in &s.decisions {
        for d in chunk.iter() {
            assert_eq!(d.seq, expect, "decision log not contiguous (seq {})", s.seq);
            expect += 1;
        }
    }
}

#[test]
fn readers_observe_only_consistent_monotone_snapshots() {
    let jobs = mixed_trace(16, 90.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let mut server_cfg =
        ServerConfig::new("arena", arena::cluster::presets::physical_testbed(), cfg).with_shards(2);
    // Publish very often so readers race many distinct snapshots.
    server_cfg.publish_every = 1;
    let server = Server::start(server_cfg).expect("server start");
    let handle = server.handle();

    const READERS: usize = 6;
    let stop = Arc::new(AtomicBool::new(false));
    let observed = Arc::new(AtomicUsize::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let observed = Arc::clone(&observed);
            std::thread::spawn(move || {
                let mut last_seq = 0u64;
                let mut distinct = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let snap = handle.hub().load();
                    assert!(
                        snap.seq >= last_seq,
                        "snapshot sequence went backwards: {} -> {}",
                        last_seq,
                        snap.seq
                    );
                    if snap.seq != last_seq {
                        distinct += 1;
                        assert_consistent(&snap);
                    }
                    last_seq = snap.seq;
                }
                observed.fetch_add(distinct, Ordering::SeqCst);
                // Final snapshot is terminal and consistent too.
                let last = handle.hub().load();
                assert_consistent(&last);
                last.seq
            })
        })
        .collect();

    // Writer: feed the trace and drain while the readers hammer.
    for job in &jobs {
        let r = handle.handle_line(&submit_line(job));
        assert!(r.contains("\"ok\":true"), "submit rejected: {r}");
    }
    let drained = handle.handle_line("{\"cmd\":\"drain\"}");
    assert!(drained.contains("\"drained\":true"));

    stop.store(true, Ordering::SeqCst);
    let final_seqs: Vec<u64> = readers
        .into_iter()
        .map(|t| t.join().expect("reader panicked"))
        .collect();
    let outcome = server.join();
    assert!(outcome.state.drained);
    assert!(outcome.result.is_some());

    // The run published at least one snapshot per command, and readers
    // saw real intermediate states, not just the final one.
    assert!(
        observed.load(Ordering::SeqCst) > 0,
        "readers never observed a snapshot change"
    );
    for seq in final_seqs {
        assert!(seq > 0, "reader never saw a published snapshot");
    }
}

#[test]
fn metrics_reader_sees_monotone_live_series_during_drain() {
    // A telemetry scraper polls the lock-free registry while the daemon
    // drains a loaded trace. Each counter and each histogram's
    // count/sum are single monotone atomics, so every polled value must
    // be >= the previous poll — a decrease means the record path
    // corrupted a cell. Cross-field equalities are only checked at
    // quiescence (fields are distinct relaxed atomics, so a mid-burst
    // poll may see one updated before the other).
    let jobs = mixed_trace(16, 90.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let mut server_cfg =
        ServerConfig::new("arena", arena::cluster::presets::physical_testbed(), cfg).with_shards(2);
    server_cfg.publish_every = 1;
    let server = Server::start(server_cfg).expect("server start");
    let handle = server.handle();

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let metrics = Arc::clone(handle.metrics());
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_counters: BTreeMap<String, u64> = BTreeMap::new();
            let mut last_hists: BTreeMap<String, (u64, f64)> = BTreeMap::new();
            let mut polls = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let counters = metrics.counters_snapshot();
                for (name, &v) in &counters {
                    if let Some(&prev) = last_counters.get(name) {
                        assert!(v >= prev, "counter {name} went backwards: {prev} -> {v}");
                    }
                }
                last_counters = counters;
                for (name, h) in metrics.histograms_snapshot() {
                    assert!(
                        h.sum.is_finite() && h.sum >= 0.0,
                        "histogram {name} has a bad sum: {}",
                        h.sum
                    );
                    if let Some(&(pc, ps)) = last_hists.get(&name) {
                        assert!(
                            h.count >= pc,
                            "histogram {name} count went backwards: {pc} -> {}",
                            h.count
                        );
                        assert!(
                            h.sum >= ps - 1e-9,
                            "histogram {name} sum went backwards: {ps} -> {}",
                            h.sum
                        );
                    }
                    last_hists.insert(name, (h.count, h.sum));
                }
                // The exposition renderer must never panic or emit
                // non-text while the writers are live.
                let text = metrics.expose();
                assert!(text.is_ascii(), "exposition produced non-ASCII output");
                polls += 1;
            }
            polls
        })
    };

    for job in &jobs {
        let r = handle.handle_line(&submit_line(job));
        assert!(r.contains("\"ok\":true"), "submit rejected: {r}");
    }
    let drained = handle.handle_line("{\"cmd\":\"drain\"}");
    assert!(drained.contains("\"drained\":true"));
    stop.store(true, Ordering::SeqCst);
    let polls = reader.join().expect("metrics reader panicked");
    assert!(polls > 0, "metrics reader never polled");

    // Quiescent cross-field consistency: the drain is done, so sums
    // must sit inside [min*count, max*count] for every series, and the
    // decision loop must actually have recorded activity.
    let metrics = Arc::clone(handle.metrics());
    let counters = metrics.counters_snapshot();
    assert!(
        counters.get("sim.event.arrival").copied().unwrap_or(0) >= jobs.len() as u64,
        "arrival counter undercounts: {counters:?}"
    );
    let hists = metrics.histograms_snapshot();
    let burst = hists
        .get("sim.stage.burst_seconds")
        .expect("burst histogram registered");
    assert!(burst.count > 0, "no bursts recorded");
    for (name, h) in &hists {
        if h.count == 0 {
            continue;
        }
        let slack = 1e-6 * h.count as f64;
        assert!(
            h.sum <= h.max * h.count as f64 + slack && h.sum >= h.min * h.count as f64 - slack,
            "histogram {name} sum {} outside [{}, {}]",
            h.sum,
            h.min * h.count as f64,
            h.max * h.count as f64
        );
    }
    let _ = server.join();
}

#[test]
fn snapshots_outlive_later_publications() {
    // RCU semantics: a reader may hold an old snapshot arbitrarily long
    // after newer ones are published; it must stay valid and unchanged.
    let jobs = mixed_trace(6, 120.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let server = Server::start(
        ServerConfig::new("fcfs", arena::cluster::presets::physical_testbed(), cfg).with_shards(1),
    )
    .expect("server start");
    let handle = server.handle();

    assert!(handle
        .handle_line(&submit_line(&jobs[0]))
        .contains("\"ok\":true"));
    let early = handle.hub().load();
    let early_seq = early.seq;
    let early_submitted = early.state.submitted;

    for job in &jobs[1..] {
        assert!(handle
            .handle_line(&submit_line(job))
            .contains("\"ok\":true"));
    }
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));

    let late = handle.hub().load();
    assert!(late.seq > early_seq, "no publications after the first");
    // The old snapshot is untouched by everything that happened since.
    assert_eq!(early.seq, early_seq);
    assert_eq!(early.state.submitted, early_submitted);
    assert_consistent(&early);
    assert_consistent(&late);
    let _ = server.join();
}
