//! End-to-end service equivalence: the resident daemon against the
//! batch engine.
//!
//! `arena-server` drives the same incremental engine the batch entry
//! points wrap, so replaying a trace as an online command stream — one
//! JSONL `submit`/`fault` line at a time, in timestamp order, in any
//! interleaving with read-only queries — then draining must produce
//! output *byte-identical* to `simulate_sharded_with_faults_traced` on
//! the whole trace: every record, timeline sample, decision line and
//! traced event. These tests pin that contract for all five policies,
//! with and without fault injection, across shard counts — extending
//! the engine/shard equivalence guarantee across the batch/online
//! boundary.
//!
//! Every execution knob is pinned explicitly (policies built by name
//! with one worker thread, shard counts set on the config), so ambient
//! `ARENA_SHARDS` / `ARENA_WORKER_THREADS` cannot skew the comparison.

use arena::prelude::*;
use arena::sched::{policy_by_name, POLICY_NAMES};
use arena::sim::simulate_sharded_with_faults_traced;
use arena::trace::FaultEvent;
use arena_server::protocol::{fault_line, submit_line};
use arena_server::{Server, ServerConfig};

fn mixed_trace(n: u64, gap_s: f64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 300 + 150 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

/// Everything observable about a run except wall-clock decision timing
/// (same convention as `tests/shard_equivalence.rs`).
fn fingerprint(mut r: SimResult) -> String {
    r.metrics.avg_decision_s = 0.0;
    format!(
        "policy={}\nmetrics={}\nrecords={:?}\ntimeline={:?}\nraw={:?}\ndecisions=\n{}\nevents={:?}\nnodes={:?}",
        r.policy,
        serde_json::to_string(&r.metrics).expect("metrics serialise"),
        r.records,
        r.timeline,
        r.raw_timeline,
        r.trace.decisions_jsonl(),
        r.trace.timeline.events,
        r.trace.timeline.nodes,
    )
}

fn batch_fingerprint(
    policy: &str,
    jobs: &[JobSpec],
    faults: &[FaultEvent],
    cfg: &SimConfig,
    shards: usize,
) -> String {
    let cluster = arena::cluster::presets::physical_testbed();
    let mut p = policy_by_name(policy, 1).expect("known policy");
    let service = PlanService::new(&cluster, CostParams::default(), 17);
    let obs = Obs::enabled();
    let plan = ShardPlan::per_pool(&cluster)
        .with_shards(shards)
        .with_workers(WorkerPool::new(1));
    fingerprint(simulate_sharded_with_faults_traced(
        &cluster,
        jobs,
        p.as_mut(),
        &service,
        cfg,
        faults,
        &obs,
        &plan,
    ))
}

/// The trace as the daemon would receive it live: submissions and
/// faults merged into one timestamp-ordered JSONL command stream.
fn command_stream(jobs: &[JobSpec], faults: &[FaultEvent]) -> Vec<String> {
    let mut lines = Vec::with_capacity(jobs.len() + faults.len());
    let (mut ji, mut fi) = (0, 0);
    while ji < jobs.len() || fi < faults.len() {
        let take_job =
            fi >= faults.len() || (ji < jobs.len() && jobs[ji].submit_s <= faults[fi].time_s);
        if take_job {
            lines.push(submit_line(&jobs[ji]));
            ji += 1;
        } else {
            lines.push(fault_line(&faults[fi]));
            fi += 1;
        }
    }
    lines
}

fn server_config(policy: &str, cfg: &SimConfig, shards: usize) -> ServerConfig {
    ServerConfig::new(
        policy,
        arena::cluster::presets::physical_testbed(),
        cfg.clone(),
    )
    .with_shards(shards)
}

/// Boots the daemon, feeds the command stream, optionally interleaving
/// a status query after every command, drains, and returns the final
/// fingerprint.
fn server_fingerprint(
    policy: &str,
    jobs: &[JobSpec],
    faults: &[FaultEvent],
    cfg: &SimConfig,
    shards: usize,
    query_between: bool,
) -> String {
    let server = Server::start(server_config(policy, cfg, shards)).expect("server start");
    let handle = server.handle();
    for line in command_stream(jobs, faults) {
        let response = handle.handle_line(&line);
        assert!(
            response.contains("\"ok\":true"),
            "command rejected: {line} -> {response}"
        );
        if query_between {
            let status = handle.handle_line("{\"cmd\":\"query\",\"what\":\"status\"}");
            assert!(status.contains("\"ok\":true"), "status failed: {status}");
            let jobs_view = handle.handle_line("{\"cmd\":\"query\",\"what\":\"jobs\"}");
            assert!(jobs_view.contains("\"ok\":true"));
        }
    }
    let drained = handle.handle_line("{\"cmd\":\"drain\"}");
    assert!(
        drained.contains("\"drained\":true"),
        "drain did not complete: {drained}"
    );
    let outcome = server.join();
    assert!(outcome.state.drained);
    fingerprint(outcome.result.expect("drained run yields a SimResult"))
}

fn fault_fixture() -> Vec<FaultEvent> {
    let faults = arena::trace::generate_faults(
        &arena::trace::FaultConfig::with_mtbf(9_000.0),
        &[16, 16],
        24.0 * 3600.0,
    );
    assert!(!faults.is_empty(), "fixture produced no faults");
    faults
}

#[test]
fn online_stream_matches_batch_all_policies_unfaulted() {
    let jobs = mixed_trace(12, 150.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    for policy in POLICY_NAMES {
        for shards in [1_usize, 4] {
            let batch = batch_fingerprint(policy, &jobs, &[], &cfg, shards);
            let online = server_fingerprint(policy, &jobs, &[], &cfg, shards, false);
            assert_eq!(
                online, batch,
                "online {policy} (shards={shards}) diverged from batch"
            );
        }
    }
}

#[test]
fn online_stream_matches_batch_all_policies_faulted() {
    let jobs = mixed_trace(12, 150.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let faults = fault_fixture();
    for policy in POLICY_NAMES {
        for shards in [1_usize, 4] {
            let batch = batch_fingerprint(policy, &jobs, &faults, &cfg, shards);
            let online = server_fingerprint(policy, &jobs, &faults, &cfg, shards, false);
            assert_eq!(
                online, batch,
                "online {policy} (shards={shards}, faulted) diverged from batch"
            );
        }
    }
}

#[test]
fn interleaved_queries_do_not_perturb_the_run() {
    // Reads are served from snapshots; hammering status/jobs queries
    // between every command must leave the fingerprint untouched.
    let jobs = mixed_trace(10, 130.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let faults = fault_fixture();
    for policy in ["fcfs", "arena"] {
        let batch = batch_fingerprint(policy, &jobs, &faults, &cfg, 2);
        let online = server_fingerprint(policy, &jobs, &faults, &cfg, 2, true);
        assert_eq!(online, batch, "queries perturbed the {policy} run");
    }
}

#[test]
fn horizon_cutoff_matches_batch() {
    // A horizon slicing through running jobs exercises the open-segment
    // flush paths across the service boundary.
    let jobs = mixed_trace(8, 60.0);
    let cfg = SimConfig::new(2_500.0);
    for policy in POLICY_NAMES {
        let batch = batch_fingerprint(policy, &jobs, &[], &cfg, 2);
        let online = server_fingerprint(policy, &jobs, &[], &cfg, 2, false);
        assert_eq!(online, batch, "horizon cutoff diverged for {policy}");
    }
}

#[test]
fn rejected_input_leaves_the_run_untouched() {
    // Streams interspersed with garbage (malformed JSON, unknown
    // commands, duplicate ids, stale timestamps) must yield the same
    // bytes as the clean stream: reject-and-continue, never corrupt.
    let jobs = mixed_trace(10, 130.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let batch = batch_fingerprint("arena", &jobs, &[], &cfg, 2);

    let server = Server::start(server_config("arena", &cfg, 2)).expect("server start");
    let handle = server.handle();
    for (i, line) in command_stream(&jobs, &[]).iter().enumerate() {
        assert!(handle.handle_line(line).contains("\"ok\":true"));
        // Garbage after every accepted command.
        for bad in [
            "not json at all",
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"frobnicate\"}",
            "{\"cmd\":\"advance\",\"to_s\":\"soon\"}",
        ] {
            let r = handle.handle_line(bad);
            assert!(r.contains("\"ok\":false"), "garbage accepted: {bad} -> {r}");
        }
        // A duplicate of an already-submitted job id is rejected.
        let dup = handle.handle_line(&submit_line(&jobs[i]));
        assert!(dup.contains("\"ok\":false"), "duplicate id accepted: {dup}");
        // A submission from the past is rejected.
        if i > 1 {
            let mut stale = jobs[0].clone();
            stale.id = 999;
            let r = handle.handle_line(&submit_line(&stale));
            assert!(r.contains("\"ok\":false"), "stale submit accepted: {r}");
        }
    }
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let outcome = server.join();
    let online = fingerprint(outcome.result.expect("drained"));
    assert_eq!(online, batch, "rejected input perturbed the run");
}

#[test]
fn cancel_drops_a_running_job() {
    // `cancel` has no batch counterpart: it releases the job's GPUs,
    // marks it dropped and lets the policy react. Check the drained
    // state accounts for it.
    let jobs = mixed_trace(6, 120.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let server = Server::start(server_config("fcfs", &cfg, 2)).expect("server start");
    let handle = server.handle();
    for job in &jobs {
        assert!(handle
            .handle_line(&submit_line(job))
            .contains("\"ok\":true"));
    }
    let r = handle.handle_line(&format!(
        "{{\"cmd\":\"cancel\",\"time_s\":{},\"job\":2}}",
        jobs.last().unwrap().submit_s + 60.0
    ));
    assert!(r.contains("\"ok\":true"), "cancel rejected: {r}");
    // Cancelling an unknown job is rejected without effect.
    let r = handle.handle_line("{\"cmd\":\"cancel\",\"time_s\":99999,\"job\":777}");
    assert!(r.contains("\"ok\":false"));
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let outcome = server.join();
    assert!(outcome.state.drained);
    assert_eq!(
        outcome.state.finished + outcome.state.dropped,
        jobs.len(),
        "every job must end terminal"
    );
    assert!(outcome.state.dropped >= 1, "cancelled job not dropped");
    let cancelled = outcome
        .state
        .jobs
        .iter()
        .find(|j| j.id == 2)
        .expect("job 2 present");
    assert_eq!(cancelled.phase.label(), "dropped");
}

#[test]
fn decision_log_query_returns_the_full_jsonl() {
    let jobs = mixed_trace(8, 100.0);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let server = Server::start(server_config("fcfs", &cfg, 1)).expect("server start");
    let handle = server.handle();
    for job in &jobs {
        assert!(handle
            .handle_line(&submit_line(job))
            .contains("\"ok\":true"));
    }
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let snap = handle.hub().load();
    let jsonl = snap.decisions_jsonl_from(0);
    assert!(!jsonl.is_empty(), "no decisions published");
    assert_eq!(jsonl.lines().count(), snap.decision_count());
    // Chunked reads compose to the same bytes.
    let mid = snap.decision_count() / 2;
    let head: String = jsonl.lines().take(mid).map(|l| format!("{l}\n")).collect();
    assert_eq!(format!("{head}{}", snap.decisions_jsonl_from(mid)), jsonl);
    let outcome = server.join();
    // The published decision log is exactly the drained run's log.
    assert_eq!(jsonl, outcome.decisions_jsonl);
}
