//! The live telemetry plane, end to end (DESIGN.md §14).
//!
//! 1. **Golden exposition** — a hand-built registry with fixed inputs
//!    renders exactly the committed Prometheus-style text under
//!    `tests/snapshots/metrics_exposition.txt`. The exposition is pure:
//!    sorted by series name, no timestamps, no floating noise —
//!    so it pins the format byte-for-byte. Regenerate after an intended
//!    format change with `UPDATE_SNAPSHOTS=1 cargo test`.
//! 2. **Flight recorder** — the daemon's dump is byte-identical to the
//!    tail of the full decision log, live (`dump` command) and at
//!    shutdown (`ServerOutcome::flight_jsonl`).
//! 3. **Protocol** — `id` correlation echo on ok and err responses,
//!    `watch` streaming with sample numbering, and a mid-run
//!    `query metrics` scrape.

use std::path::PathBuf;

use arena::prelude::*;
use arena_server::protocol::submit_line;
use arena_server::{Server, ServerConfig};
use serde::Value;

fn mixed_trace(n: u64, gap_s: f64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 600 + 150 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

fn server_config(policy: &str) -> ServerConfig {
    ServerConfig::new(
        policy,
        arena::cluster::presets::physical_testbed(),
        SimConfig::new(24.0 * 3600.0),
    )
    .with_shards(2)
}

fn field<'a>(response: &'a Value, key: &str) -> &'a Value {
    response.get(key).unwrap_or_else(|| {
        panic!("response missing field {key:?}: {response:?}");
    })
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) if *n >= 0 => *n as u64,
        Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 => *f as u64,
        other => panic!("not an unsigned integer: {other:?}"),
    }
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("not a string: {other:?}"),
    }
}

fn assert_ok(v: &Value, ok: bool) {
    assert!(
        matches!(field(v, "ok"), Value::Bool(b) if *b == ok),
        "unexpected ok flag in {v:?}"
    );
}

#[test]
fn exposition_matches_golden_snapshot() {
    // Fixed inputs: the registry's exposition must not depend on
    // timing, iteration order, or platform.
    let reg = MetricsRegistry::new(4);
    reg.counter("sim.event.arrival").incr(3);
    reg.counter("sim.event.round").incr(1);
    reg.counter("server.commands").incr(12);
    reg.gauge("sim.queue_depth").set(2.0);
    reg.gauge("sim.shard.heap_depth{shard=\"0\"}").set(5.0);
    reg.gauge("sim.shard.heap_depth{shard=\"1\"}").set(7.0);
    reg.gauge("sim.estimator.estimate_hit_ratio").set(0.75);
    let schedule = reg.histogram("sim.schedule");
    for v in [1e-6, 2e-6, 0.001953125, 0.5, 1.0] {
        schedule.observe(v);
    }
    reg.histogram("sim.stage.burst_seconds").observe(0.25);
    // An empty histogram still exposes its +Inf bucket, sum and count.
    let _ = reg.histogram("sim.commit");

    let got = reg.expose();
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/metrics_exposition.txt");
    if std::env::var("UPDATE_SNAPSHOTS").is_ok() {
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {path:?} ({e}); regenerate with UPDATE_SNAPSHOTS=1")
    });
    assert_eq!(
        got, want,
        "Prometheus exposition drifted from the committed snapshot; \
         regenerate with UPDATE_SNAPSHOTS=1 cargo test if intended"
    );
    // Rendering twice is stable, and a second registry built the same
    // way renders identically (no instance-dependent state leaks in).
    assert_eq!(reg.expose(), got);
}

#[test]
fn flight_dump_is_byte_identical_to_decision_tail() {
    let jobs = mixed_trace(12, 120.0);
    let mut cfg = server_config("fcfs");
    cfg.flight_capacity = 8;
    let server = Server::start(cfg).expect("server start");
    let handle = server.handle();
    for job in &jobs {
        assert!(handle
            .handle_line(&submit_line(job))
            .contains("\"ok\":true"));
    }
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));

    // Live dump at quiescence: the ring holds the last 8 decisions,
    // rendered byte-for-byte as the decision log renders them.
    let dump: Value =
        serde_json::from_str(&handle.handle_line("{\"cmd\":\"dump\"}")).expect("dump parses");
    assert_ok(&dump, true);
    assert_eq!(as_u64(field(&dump, "capacity")), 8);
    let total = as_u64(field(&dump, "total")) as usize;
    let jsonl = as_str(field(&dump, "jsonl")).to_string();

    let full = handle.hub().load().decisions_jsonl_from(0);
    let all_lines: Vec<&str> = full.lines().collect();
    assert_eq!(total, all_lines.len(), "ring total disagrees with log");
    assert!(
        all_lines.len() > 8,
        "fixture too small to overflow the ring ({} decisions)",
        all_lines.len()
    );
    let tail = &all_lines[all_lines.len() - 8..];
    let dumped: Vec<&str> = jsonl.lines().collect();
    assert_eq!(dumped, tail, "flight dump is not the decision-log tail");

    // Shutdown dump: same bytes land in the outcome.
    let outcome = server.join();
    let out_lines: Vec<&str> = outcome.decisions_jsonl.lines().collect();
    let out_tail = &out_lines[out_lines.len() - 8..];
    assert_eq!(
        outcome.flight_jsonl.lines().collect::<Vec<_>>(),
        out_tail,
        "outcome flight dump is not the final decision tail"
    );
}

#[test]
fn request_ids_echo_on_ok_and_err() {
    let server = Server::start(server_config("fcfs")).expect("server start");
    let handle = server.handle();
    let jobs = mixed_trace(1, 0.0);

    // ok path: echo a numeric id.
    let mut line = submit_line(&jobs[0]);
    line.insert_str(1, "\"id\":42,");
    let ok: Value = serde_json::from_str(&handle.handle_line(&line)).unwrap();
    assert_ok(&ok, true);
    assert_eq!(as_u64(field(&ok, "id")), 42);

    // err path: echo a string id on a rejected command.
    let err: Value =
        serde_json::from_str(&handle.handle_line("{\"cmd\":\"bogus\",\"id\":\"req-7\"}")).unwrap();
    assert_ok(&err, false);
    assert_eq!(as_str(field(&err, "id")), "req-7");

    // no id, no echo: the response object gains no null field.
    let bare: Value =
        serde_json::from_str(&handle.handle_line("{\"cmd\":\"query\",\"what\":\"status\"}"))
            .unwrap();
    assert!(bare.get("id").is_none(), "uncorrelated response grew an id");

    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let _ = server.join();
}

#[test]
fn watch_streams_numbered_samples_and_metrics_scrape_is_well_formed() {
    let jobs = mixed_trace(6, 150.0);
    let server = Server::start(server_config("arena")).expect("server start");
    let handle = server.handle();
    for job in &jobs {
        assert!(handle
            .handle_line(&submit_line(job))
            .contains("\"ok\":true"));
    }

    // Mid-run metrics scrape: the exposition must already carry the
    // decision-loop series.
    let scrape: Value =
        serde_json::from_str(&handle.handle_line("{\"cmd\":\"query\",\"what\":\"metrics\"}"))
            .unwrap();
    let text = as_str(field(&scrape, "metrics")).to_string();
    let text = text.as_str();
    for series in [
        "sim_event_arrival",
        "sim_stage_burst_seconds_count",
        // Memory-ledger gauges publish on the engine's first pass (then
        // on a 1-in-64 clock), so a mid-run scrape already carries
        // cache occupancy.
        "mem_bytes{section=\"estimator.profiles\"}",
        "mem_budget_bytes{section=\"plans.cells\"}",
        "mem_evictions{section=\"estimator.estimates\"}",
    ] {
        assert!(text.contains(series), "scrape missing {series}:\n{text}");
    }

    // watch = repeated query with sample numbering, streamed via sink.
    let mut samples = Vec::new();
    handle.handle_line_sink(
        "{\"cmd\":\"watch\",\"what\":\"metrics\",\"interval_s\":0.01,\"count\":3,\"id\":9}",
        &mut |line: &str| {
            samples.push(line.to_string());
            true
        },
    );
    assert_eq!(samples.len(), 3, "watch count not honoured: {samples:?}");
    for (i, line) in samples.iter().enumerate() {
        let v: Value = serde_json::from_str(line).expect("watch sample parses");
        assert_ok(&v, true);
        assert_eq!(as_u64(field(&v, "sample")), i as u64);
        assert_eq!(as_u64(field(&v, "id")), 9, "watch sample lost its id");
        assert!(!as_str(field(&v, "metrics")).is_empty());
    }

    // A cancelled sink stops the stream early.
    let mut first_only = Vec::new();
    handle.handle_line_sink(
        "{\"cmd\":\"watch\",\"what\":\"status\",\"interval_s\":0.01,\"count\":10}",
        &mut |line: &str| {
            first_only.push(line.to_string());
            false
        },
    );
    assert_eq!(first_only.len(), 1, "cancelled watch kept streaming");

    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let _ = server.join();
}
