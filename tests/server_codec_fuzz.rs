//! Fuzz-style property tests over the JSONL command codec.
//!
//! The daemon's contract for adversarial input is **reject-and-continue**:
//! truncated lines, unknown commands/fields, out-of-order timestamps,
//! duplicate job ids, bad node coordinates — every malformed or invalid
//! line yields exactly one `ok:false` response, never a panic, and
//! never corrupts engine state. After any garbage barrage the daemon
//! still accepts clean input, drains, and its final state balances.

use std::io::Cursor;

use proptest::prelude::*;

use arena::model::zoo::{ModelConfig, ModelFamily};
use arena::sim::SimConfig;
use arena::trace::JobSpec;
use arena_server::protocol::submit_line;
use arena_server::{serve_lines, Server, ServerConfig};

fn job(id: u64, submit_s: f64) -> JobSpec {
    JobSpec {
        id,
        name: format!("j{id}"),
        submit_s,
        model: ModelConfig::new(ModelFamily::Bert, 0.76, 256),
        iterations: 200,
        requested_gpus: 2,
        requested_pool: 0,
        deadline_s: None,
    }
}

fn server() -> Server {
    // Horizon comfortably past the clean-trace timestamps (1e6 s) so the
    // post-soup jobs can run to completion.
    Server::start(
        ServerConfig::new(
            "fcfs",
            arena::cluster::presets::physical_testbed(),
            SimConfig::new(2_000_000.0),
        )
        .with_shards(2),
    )
    .expect("server start")
}

/// Deterministically maps a fuzz tuple to one adversarial input line.
fn adversarial_line(kind: usize, a: u64, b: u64) -> String {
    match kind {
        // Valid submissions mixed into the soup (monotone ids/times are
        // NOT guaranteed here — duplicates and regressions are the point).
        0 => submit_line(&job(a % 8, (b % 10_000) as f64)),
        // Truncated JSON: a valid line cut mid-way.
        1 => {
            let full = submit_line(&job(a, b as f64));
            let cut = 1 + (b as usize % (full.len() - 1));
            full[..cut].to_string()
        }
        // Unknown command / query discriminators.
        2 => format!("{{\"cmd\":\"cmd{a}\"}}"),
        3 => format!("{{\"cmd\":\"query\",\"what\":\"what{a}\"}}"),
        // Unknown extra fields are tolerated on known commands.
        4 => format!(
            "{{\"cmd\":\"advance\",\"to_s\":{},\"priority\":\"max\",\"x{a}\":1}}",
            (b % 10_000) as f64
        ),
        // Wrong field types.
        5 => "{\"cmd\":\"advance\",\"to_s\":\"soon\"}".to_string(),
        6 => format!("{{\"cmd\":\"cancel\",\"time_s\":{b},\"job\":\"j{a}\"}}"),
        // Fault with a bad kind or absurd node coordinates.
        7 => format!(
            "{{\"cmd\":\"fault\",\"time_s\":{b},\"pool\":0,\"node\":0,\"kind\":\"melt{a}\"}}"
        ),
        8 => format!(
            "{{\"cmd\":\"fault\",\"time_s\":{b},\"pool\":{},\"node\":{},\"kind\":\"failure\"}}",
            a % 100,
            b % 1_000
        ),
        // Non-finite / absurd timestamps.
        9 => "{\"cmd\":\"advance\",\"to_s\":1e400}".to_string(),
        // Structural garbage.
        10 => "[1,2,3]".to_string(),
        11 => format!("garbage {a} \u{1F980} {b}"),
        _ => "   ".to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any barrage of adversarial lines: one JSON response per line,
    /// no panic, and the daemon still runs a clean trace to completion.
    #[test]
    fn adversarial_streams_reject_and_continue(
        soup in proptest::collection::vec((0_usize..13, 0_u64..1000, 0_u64..100_000), 1..60)
    ) {
        let server = server();
        let handle = server.handle();
        for (kind, a, b) in soup {
            let line = adversarial_line(kind, a, b);
            let response = handle.handle_line(&line);
            // Every response is one complete JSON object with `ok`.
            let v: serde::Value = serde_json::from_str(&response)
                .unwrap_or_else(|e| panic!("unparseable response `{response}`: {e}"));
            let ok = v.get("ok");
            prop_assert!(
                matches!(ok, Some(serde::Value::Bool(_))),
                "response missing ok: {}", response
            );
            // Definitely-bad categories must be rejected.
            if matches!(kind, 1 | 2 | 3 | 5 | 6 | 7 | 9 | 10 | 11 | 12) {
                prop_assert!(
                    response.contains("\"ok\":false"),
                    "bad line accepted: {} -> {}", line, response
                );
            }
        }
        // The snapshot the barrage left behind still balances.
        let snap = handle.hub().load();
        let st = &snap.state;
        prop_assert_eq!(
            st.submitted,
            st.pending + st.queued + st.starting + st.running + st.finished + st.dropped
        );
        // And the daemon still serves a clean run: fresh ids, fresh
        // timestamps past anything the soup reached.
        let base = 1_000_000.0;
        for i in 0..3u64 {
            let r = handle.handle_line(&submit_line(&job(500 + i, base + 60.0 * i as f64)));
            prop_assert!(r.contains("\"ok\":true"), "clean submit rejected: {}", r);
        }
        let drained = handle.handle_line("{\"cmd\":\"drain\"}");
        prop_assert!(drained.contains("\"drained\":true"), "drain failed: {}", drained);
        let outcome = server.join();
        prop_assert!(outcome.state.drained);
        prop_assert!(outcome.state.finished >= 3, "clean jobs did not finish");
    }

    /// The same soup through the `--stdin` transport: the line loop
    /// yields exactly one response line per input line.
    #[test]
    fn stdin_transport_is_line_accurate(
        soup in proptest::collection::vec((0_usize..13, 0_u64..1000, 0_u64..100_000), 1..40)
    ) {
        let server = server();
        let handle = server.handle();
        let n = soup.len();
        let input: String = soup
            .into_iter()
            .map(|(k, a, b)| format!("{}\n", adversarial_line(k, a, b)))
            .collect();
        let mut output = Vec::new();
        serve_lines(&handle, Cursor::new(input), &mut output).expect("serve");
        let text = String::from_utf8(output).expect("responses are UTF-8");
        prop_assert_eq!(text.lines().count(), n);
        for line in text.lines() {
            let v: serde::Value = serde_json::from_str(line).expect("response parses");
            prop_assert!(v.get("ok").is_some());
        }
        let _ = server.join();
    }
}

#[test]
fn duplicate_ids_and_time_regressions_are_rejected() {
    let server = server();
    let handle = server.handle();
    assert!(handle
        .handle_line(&submit_line(&job(1, 100.0)))
        .contains("\"ok\":true"));
    // Same id again, later time: duplicate.
    let r = handle.handle_line(&submit_line(&job(1, 200.0)));
    assert!(r.contains("\"ok\":false") && r.contains("duplicate"), "{r}");
    // New id, earlier time: unsorted.
    let r = handle.handle_line(&submit_line(&job(2, 50.0)));
    assert!(r.contains("\"ok\":false"), "{r}");
    // Still healthy.
    assert!(handle
        .handle_line(&submit_line(&job(3, 300.0)))
        .contains("\"ok\":true"));
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let outcome = server.join();
    assert_eq!(
        outcome.state.submitted, 2,
        "rejected lines leaked into state"
    );
}

#[test]
fn input_after_drain_is_rejected_cleanly() {
    let server = server();
    let handle = server.handle();
    assert!(handle
        .handle_line(&submit_line(&job(0, 0.0)))
        .contains("\"ok\":true"));
    assert!(handle
        .handle_line("{\"cmd\":\"drain\"}")
        .contains("\"drained\":true"));
    let r = handle.handle_line(&submit_line(&job(1, 500.0)));
    assert!(
        r.contains("\"ok\":false"),
        "submit after drain accepted: {r}"
    );
    // Queries still work after the input is closed.
    let status = handle.handle_line("{\"cmd\":\"query\",\"what\":\"status\"}");
    assert!(status.contains("\"ok\":true") && status.contains("\"drained\":true"));
    let _ = server.join();
}
