//! Property-based tests over the core invariants of the stack.

use proptest::prelude::*;

use arena::cluster::{Cluster, GpuSpec, GpuTypeId, NodeSpec};
use arena::model::zoo::{ModelConfig, ModelFamily};
use arena::parallelism::stages::pow2_composition;
use arena::parallelism::{determine_stages, stage_plan_options, PipelinePlan, PlanSpace};
use arena::perf::target::Channel;
use arena::perf::{collective, noise::NoiseModel, CostParams, HwTarget, PerfModel};

fn family(ix: usize) -> (ModelFamily, f64) {
    let table = [
        (ModelFamily::WideResNet, 0.5),
        (ModelFamily::WideResNet, 1.0),
        (ModelFamily::Bert, 0.76),
        (ModelFamily::Bert, 1.3),
        (ModelFamily::Moe, 0.69),
        (ModelFamily::Moe, 1.3),
    ];
    table[ix % table.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The allocator's books always balance: any sequence of allocations
    /// and releases leaves free-GPU counts consistent and within bounds.
    #[test]
    fn allocator_books_balance(ops in proptest::collection::vec((0_usize..3, 1_usize..12), 1..40)) {
        let mut cluster = Cluster::new(&[
            (NodeSpec::with_default_links(GpuSpec::A100, 4), 3),
            (NodeSpec::with_default_links(GpuSpec::A10, 2), 4),
        ]);
        let totals = [12_usize, 8];
        let mut live: Vec<arena::cluster::Allocation> = Vec::new();
        let mut used = [0_usize; 2];
        for (sel, n) in ops {
            if sel == 2 && !live.is_empty() {
                let a = live.swap_remove(n % live.len());
                used[a.pool.0] -= a.total_gpus();
                cluster.release(&a).expect("release succeeds");
            } else {
                let pool = GpuTypeId(sel % 2);
                match cluster.allocate(pool, n) {
                    Ok(a) => {
                        prop_assert_eq!(a.total_gpus(), n);
                        used[pool.0] += n;
                        live.push(a);
                    }
                    Err(_) => {
                        // Allocation may only fail when capacity is short.
                        prop_assert!(used[pool.0] + n > totals[pool.0]);
                    }
                }
            }
            for (i, &total) in totals.iter().enumerate() {
                prop_assert_eq!(cluster.free_gpus(GpuTypeId(i)), total - used[i]);
            }
        }
    }

    /// Power-of-two compositions exist iff `parts <= total`, sum exactly,
    /// and every part is a power of two.
    #[test]
    fn pow2_composition_invariants(total in 1_usize..200, parts in 1_usize..24) {
        match pow2_composition(total, parts) {
            Some(v) => {
                prop_assert_eq!(v.len(), parts);
                prop_assert_eq!(v.iter().sum::<usize>(), total);
                prop_assert!(v.iter().all(|p| p.is_power_of_two()));
            }
            None => prop_assert!(
                parts > total || (total.count_ones() as usize) > parts
            ),
        }
    }

    /// Stage determination covers the whole graph exactly once with
    /// power-of-two stage sizes summing to the allocation.
    #[test]
    fn stage_determination_invariants(ix in 0_usize..6, gpus_log in 0_u32..7, stages_log in 0_u32..5) {
        let (fam, size) = family(ix);
        let graph = ModelConfig::new(fam, size, 256).build();
        let gpus = 1_usize << gpus_log;
        let stages = 1_usize << stages_log;
        if let Some(p) = determine_stages(&graph, gpus, stages) {
            prop_assert_eq!(p.num_stages(), stages);
            prop_assert_eq!(p.total_gpus(), gpus);
            let mut next = 0;
            for r in &p.ranges {
                prop_assert_eq!(r.start, next);
                prop_assert!(!r.is_empty());
                next = r.end;
            }
            prop_assert_eq!(next, graph.len());
            prop_assert!(p.gpus.iter().all(|g| g.is_power_of_two()));
        } else {
            prop_assert!(stages > gpus || stages > graph.len());
        }
    }

    /// Every option of a stage's exploration axis uses exactly its GPUs,
    /// and the axis runs from DP-only to TP-only.
    #[test]
    fn stage_options_conserve_gpus(g_log in 0_u32..7) {
        let g = 1_usize << g_log;
        let opts = stage_plan_options(g);
        prop_assert_eq!(opts.len(), g_log as usize + 1);
        prop_assert!(opts.iter().all(|p| p.gpus() == g));
        prop_assert_eq!(opts.first().unwrap().dp, g);
        prop_assert_eq!(opts.last().unwrap().tp, g);
    }

    /// Indexed access into a plan space agrees with iteration, and every
    /// plan in the space is valid for the graph.
    #[test]
    fn plan_space_indexing(ix in 0_usize..6, gpus_log in 1_u32..5, stages_log in 0_u32..3) {
        let (fam, size) = family(ix);
        let graph = ModelConfig::new(fam, size, 256).build();
        let gpus = 1_usize << gpus_log;
        let stages = 1_usize << stages_log;
        prop_assume!(stages <= gpus && stages <= graph.len());
        let Some(part) = determine_stages(&graph, gpus, stages) else {
            return Ok(());
        };
        let space = PlanSpace::new(part);
        let by_iter: Vec<String> = space.iter().map(|p| p.label()).collect();
        for (i, label) in by_iter.iter().enumerate() {
            let plan = space.plan_at_index(i as u128);
            prop_assert_eq!(&plan.label(), label);
            prop_assert!(plan.is_valid_for(&graph));
            prop_assert_eq!(plan.total_gpus(), gpus);
        }
    }

    /// Collective costs are non-negative and monotone in volume.
    #[test]
    fn collectives_monotone(bytes in 1.0e3_f64..1.0e11, n in 2_usize..64) {
        let ch = Channel::from_link(arena::cluster::LinkKind::IbCx5);
        for f in [
            collective::allreduce, collective::allgather, collective::alltoall,
        ] {
            let t1 = f(bytes, n, ch);
            let t2 = f(bytes * 2.0, n, ch);
            prop_assert!(t1 > 0.0);
            prop_assert!(t2 > t1);
        }
        prop_assert!(collective::p2p(bytes * 2.0, ch) > collective::p2p(bytes, ch));
    }

    /// Plan evaluation keeps throughput = batch / iteration time and
    /// reports a max memory equal to the max over stages.
    #[test]
    fn evaluation_consistency(ix in 0_usize..6, gpus_log in 1_u32..4, stages_log in 0_u32..3) {
        let (fam, size) = family(ix);
        let gb = 256;
        let graph = ModelConfig::new(fam, size, gb).build();
        let gpus = 1_usize << gpus_log;
        let stages = 1_usize << stages_log;
        prop_assume!(stages <= gpus && stages <= graph.len());
        let Some(part) = determine_stages(&graph, gpus, stages) else {
            return Ok(());
        };
        let model = PerfModel::new(CostParams::default());
        let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
        for plan in PlanSpace::new(part).iter() {
            if let Ok(perf) = model.evaluate(&graph, gb, &plan, &hw) {
                prop_assert!(perf.iter_time_s > 0.0);
                prop_assert!(
                    (perf.throughput_sps - gb as f64 / perf.iter_time_s).abs() < 1e-9
                );
                let max_stage = perf.stages.iter().map(|s| s.mem_bytes).fold(0.0, f64::max);
                prop_assert_eq!(perf.max_mem_bytes, max_stage);
                prop_assert!(perf.microbatches >= plan.microbatches());
                let budget = hw.node.gpu.mem_bytes() as f64
                    * model.params.usable_mem_frac;
                prop_assert!(perf.max_mem_bytes <= budget);
            }
        }
    }

    /// Noise factors are deterministic, bounded, and identity when off.
    #[test]
    fn noise_bounds(seed in 0_u64..1000, key in "[a-z]{1,16}") {
        let n = NoiseModel::new(0.05, seed);
        let f = n.factor(&key);
        prop_assert_eq!(f, n.factor(&key));
        prop_assert!((0.85..=1.15).contains(&f));
        prop_assert_eq!(NoiseModel::disabled().factor(&key), 1.0);
    }

    /// Assembled plans are always a subset of the full exploration space.
    #[test]
    fn assembled_subset_of_space(ix in 0_usize..6, stages_log in 0_u32..3) {
        let (fam, size) = family(ix);
        let graph = ModelConfig::new(fam, size, 256).build();
        let stages = 1_usize << stages_log;
        let Some(part) = determine_stages(&graph, 8, stages) else {
            return Ok(());
        };
        let full: std::collections::HashSet<String> =
            PlanSpace::new(part.clone()).iter().map(|p| p.label()).collect();
        let assembled = arena::parallelism::assembled_plans(&part);
        prop_assert_eq!(assembled.len(), 1 << stages);
        for p in &assembled {
            prop_assert!(full.contains(&p.label()));
        }
    }

    /// Plan labels round-trip the structure they describe (distinct plans
    /// get distinct labels within a space).
    #[test]
    fn plan_labels_unique(stages_log in 0_u32..3) {
        let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let stages = 1_usize << stages_log;
        let Some(part) = determine_stages(&graph, 8, stages) else {
            return Ok(());
        };
        let labels: Vec<String> = PlanSpace::new(part).iter().map(|p| p.label()).collect();
        let set: std::collections::HashSet<&String> = labels.iter().collect();
        prop_assert_eq!(set.len(), labels.len());
    }
}

/// Non-proptest sanity: `PipelinePlan::short_label` is stable for the
/// uniform case (used by experiment output).
#[test]
fn short_label_format() {
    let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
    let part = determine_stages(&graph, 4, 2).unwrap();
    let plan: PipelinePlan = PlanSpace::new(part).iter().next().unwrap();
    assert!(plan.short_label().starts_with('D') || plan.short_label().starts_with('P'));
}
