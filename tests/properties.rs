//! Property-based tests over the core invariants of the stack.

use proptest::prelude::*;

use arena::cluster::PartitionMap;
use arena::cluster::{Cluster, GpuSpec, GpuTypeId, NodeSpec};
use arena::model::zoo::{ModelConfig, ModelFamily};
use arena::parallelism::stages::pow2_composition;
use arena::parallelism::{determine_stages, stage_plan_options, PipelinePlan, PlanSpace};
use arena::perf::target::Channel;
use arena::perf::{collective, noise::NoiseModel, CostParams, HwTarget, PerfModel};
use arena::runtime::WorkerPool;
use arena::sched::{FcfsPolicy, PlanService};
use arena::sim::{
    simulate_sharded_with_faults_traced, simulate_with_faults_traced, JobState, Obs, ShardPlan,
    SimConfig,
};
use arena::trace::{FaultEvent, FaultKind, JobSpec};

fn family(ix: usize) -> (ModelFamily, f64) {
    let table = [
        (ModelFamily::WideResNet, 0.5),
        (ModelFamily::WideResNet, 1.0),
        (ModelFamily::Bert, 0.76),
        (ModelFamily::Bert, 1.3),
        (ModelFamily::Moe, 0.69),
        (ModelFamily::Moe, 1.3),
    ];
    table[ix % table.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The allocator's books always balance: any sequence of allocations
    /// and releases leaves free-GPU counts consistent and within bounds.
    #[test]
    fn allocator_books_balance(ops in proptest::collection::vec((0_usize..3, 1_usize..12), 1..40)) {
        let mut cluster = Cluster::new(&[
            (NodeSpec::with_default_links(GpuSpec::A100, 4), 3),
            (NodeSpec::with_default_links(GpuSpec::A10, 2), 4),
        ]);
        let totals = [12_usize, 8];
        let mut live: Vec<arena::cluster::Allocation> = Vec::new();
        let mut used = [0_usize; 2];
        for (sel, n) in ops {
            if sel == 2 && !live.is_empty() {
                let a = live.swap_remove(n % live.len());
                used[a.pool.0] -= a.total_gpus();
                cluster.release(&a).expect("release succeeds");
            } else {
                let pool = GpuTypeId(sel % 2);
                match cluster.allocate(pool, n) {
                    Ok(a) => {
                        prop_assert_eq!(a.total_gpus(), n);
                        used[pool.0] += n;
                        live.push(a);
                    }
                    Err(_) => {
                        // Allocation may only fail when capacity is short.
                        prop_assert!(used[pool.0] + n > totals[pool.0]);
                    }
                }
            }
            for (i, &total) in totals.iter().enumerate() {
                prop_assert_eq!(cluster.free_gpus(GpuTypeId(i)), total - used[i]);
            }
        }
    }

    /// Power-of-two compositions exist iff `parts <= total`, sum exactly,
    /// and every part is a power of two.
    #[test]
    fn pow2_composition_invariants(total in 1_usize..200, parts in 1_usize..24) {
        match pow2_composition(total, parts) {
            Some(v) => {
                prop_assert_eq!(v.len(), parts);
                prop_assert_eq!(v.iter().sum::<usize>(), total);
                prop_assert!(v.iter().all(|p| p.is_power_of_two()));
            }
            None => prop_assert!(
                parts > total || (total.count_ones() as usize) > parts
            ),
        }
    }

    /// Stage determination covers the whole graph exactly once with
    /// power-of-two stage sizes summing to the allocation.
    #[test]
    fn stage_determination_invariants(ix in 0_usize..6, gpus_log in 0_u32..7, stages_log in 0_u32..5) {
        let (fam, size) = family(ix);
        let graph = ModelConfig::new(fam, size, 256).build();
        let gpus = 1_usize << gpus_log;
        let stages = 1_usize << stages_log;
        if let Some(p) = determine_stages(&graph, gpus, stages) {
            prop_assert_eq!(p.num_stages(), stages);
            prop_assert_eq!(p.total_gpus(), gpus);
            let mut next = 0;
            for r in &p.ranges {
                prop_assert_eq!(r.start, next);
                prop_assert!(!r.is_empty());
                next = r.end;
            }
            prop_assert_eq!(next, graph.len());
            prop_assert!(p.gpus.iter().all(|g| g.is_power_of_two()));
        } else {
            prop_assert!(stages > gpus || stages > graph.len());
        }
    }

    /// Every option of a stage's exploration axis uses exactly its GPUs,
    /// and the axis runs from DP-only to TP-only.
    #[test]
    fn stage_options_conserve_gpus(g_log in 0_u32..7) {
        let g = 1_usize << g_log;
        let opts = stage_plan_options(g);
        prop_assert_eq!(opts.len(), g_log as usize + 1);
        prop_assert!(opts.iter().all(|p| p.gpus() == g));
        prop_assert_eq!(opts.first().unwrap().dp, g);
        prop_assert_eq!(opts.last().unwrap().tp, g);
    }

    /// Indexed access into a plan space agrees with iteration, and every
    /// plan in the space is valid for the graph.
    #[test]
    fn plan_space_indexing(ix in 0_usize..6, gpus_log in 1_u32..5, stages_log in 0_u32..3) {
        let (fam, size) = family(ix);
        let graph = ModelConfig::new(fam, size, 256).build();
        let gpus = 1_usize << gpus_log;
        let stages = 1_usize << stages_log;
        prop_assume!(stages <= gpus && stages <= graph.len());
        let Some(part) = determine_stages(&graph, gpus, stages) else {
            return Ok(());
        };
        let space = PlanSpace::new(part);
        let by_iter: Vec<String> = space.iter().map(|p| p.label()).collect();
        for (i, label) in by_iter.iter().enumerate() {
            let plan = space.plan_at_index(i as u128);
            prop_assert_eq!(&plan.label(), label);
            prop_assert!(plan.is_valid_for(&graph));
            prop_assert_eq!(plan.total_gpus(), gpus);
        }
    }

    /// Collective costs are non-negative and monotone in volume.
    #[test]
    fn collectives_monotone(bytes in 1.0e3_f64..1.0e11, n in 2_usize..64) {
        let ch = Channel::from_link(arena::cluster::LinkKind::IbCx5);
        for f in [
            collective::allreduce, collective::allgather, collective::alltoall,
        ] {
            let t1 = f(bytes, n, ch);
            let t2 = f(bytes * 2.0, n, ch);
            prop_assert!(t1 > 0.0);
            prop_assert!(t2 > t1);
        }
        prop_assert!(collective::p2p(bytes * 2.0, ch) > collective::p2p(bytes, ch));
    }

    /// Plan evaluation keeps throughput = batch / iteration time and
    /// reports a max memory equal to the max over stages.
    #[test]
    fn evaluation_consistency(ix in 0_usize..6, gpus_log in 1_u32..4, stages_log in 0_u32..3) {
        let (fam, size) = family(ix);
        let gb = 256;
        let graph = ModelConfig::new(fam, size, gb).build();
        let gpus = 1_usize << gpus_log;
        let stages = 1_usize << stages_log;
        prop_assume!(stages <= gpus && stages <= graph.len());
        let Some(part) = determine_stages(&graph, gpus, stages) else {
            return Ok(());
        };
        let model = PerfModel::new(CostParams::default());
        let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
        for plan in PlanSpace::new(part).iter() {
            if let Ok(perf) = model.evaluate(&graph, gb, &plan, &hw) {
                prop_assert!(perf.iter_time_s > 0.0);
                prop_assert!(
                    (perf.throughput_sps - gb as f64 / perf.iter_time_s).abs() < 1e-9
                );
                let max_stage = perf.stages.iter().map(|s| s.mem_bytes).fold(0.0, f64::max);
                prop_assert_eq!(perf.max_mem_bytes, max_stage);
                prop_assert!(perf.microbatches >= plan.microbatches());
                let budget = hw.node.gpu.mem_bytes() as f64
                    * model.params.usable_mem_frac;
                prop_assert!(perf.max_mem_bytes <= budget);
            }
        }
    }

    /// Noise factors are deterministic, bounded, and identity when off.
    #[test]
    fn noise_bounds(seed in 0_u64..1000, key in "[a-z]{1,16}") {
        let n = NoiseModel::new(0.05, seed);
        let f = n.factor(&key);
        prop_assert_eq!(f, n.factor(&key));
        prop_assert!((0.85..=1.15).contains(&f));
        prop_assert_eq!(NoiseModel::disabled().factor(&key), 1.0);
    }

    /// Assembled plans are always a subset of the full exploration space.
    #[test]
    fn assembled_subset_of_space(ix in 0_usize..6, stages_log in 0_u32..3) {
        let (fam, size) = family(ix);
        let graph = ModelConfig::new(fam, size, 256).build();
        let stages = 1_usize << stages_log;
        let Some(part) = determine_stages(&graph, 8, stages) else {
            return Ok(());
        };
        let full: std::collections::HashSet<String> =
            PlanSpace::new(part.clone()).iter().map(|p| p.label()).collect();
        let assembled = arena::parallelism::assembled_plans(&part);
        prop_assert_eq!(assembled.len(), 1 << stages);
        for p in &assembled {
            prop_assert!(full.contains(&p.label()));
        }
    }

    /// Plan labels round-trip the structure they describe (distinct plans
    /// get distinct labels within a space).
    #[test]
    fn plan_labels_unique(stages_log in 0_u32..3) {
        let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let stages = 1_usize << stages_log;
        let Some(part) = determine_stages(&graph, 8, stages) else {
            return Ok(());
        };
        let labels: Vec<String> = PlanSpace::new(part).iter().map(|p| p.label()).collect();
        let set: std::collections::HashSet<&String> = labels.iter().collect();
        prop_assert_eq!(set.len(), labels.len());
    }
}

/// A small two-pool cluster that keeps each simulated timeline case
/// cheap while still exercising multi-node spans and a fault domain.
fn timeline_cluster() -> Cluster {
    Cluster::new(&[
        (NodeSpec::with_default_links(GpuSpec::A100, 4), 3),
        (NodeSpec::with_default_links(GpuSpec::A10, 4), 2),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Traced runs produce a legal timeline under arbitrary small
    /// workloads and fault schedules: per-job intervals are
    /// chronological and non-overlapping, only active states hold GPUs,
    /// and the timeline's `Running` GPU-second accounting equals the
    /// engine's `Metrics` exactly (bitwise), faulted or not.
    #[test]
    fn timeline_intervals_legal_and_gpu_seconds_exact(
        job_gen in proptest::collection::vec((0_usize..3, 30_u64..200, 0_u32..400), 1..6),
        fault in (0_u32..2, 300_u32..3000, 1_usize..3),
    ) {
        let cluster = timeline_cluster();
        let service = PlanService::new(&cluster, CostParams::default(), 11);
        let mut submit = 0.0;
        let jobs: Vec<JobSpec> = job_gen
            .iter()
            .enumerate()
            .map(|(i, &(sel, iters, gap))| {
                submit += f64::from(gap);
                JobSpec {
                    id: i as u64,
                    name: format!("j{i}"),
                    submit_s: submit,
                    model: ModelConfig::new(ModelFamily::Bert, 0.76, 256),
                    iterations: iters,
                    requested_gpus: [1, 2, 4][sel],
                    requested_pool: 0,
                    deadline_s: None,
                }
            })
            .collect();
        // `fault.0` toggles the schedule so the unfaulted path gets the
        // same coverage as the faulted one.
        let (inject, fail_t, nodes) = fault;
        let mut faults: Vec<FaultEvent> = Vec::new();
        if inject == 1 {
            let fail = f64::from(fail_t);
            faults.extend((0..nodes).map(|n| FaultEvent {
                time_s: fail,
                pool: 0,
                node: n,
                kind: FaultKind::Failure,
            }));
            faults.extend((0..nodes).map(|n| FaultEvent {
                time_s: fail + 1800.0,
                pool: 0,
                node: n,
                kind: FaultKind::Repair,
            }));
        }
        let obs = Obs::enabled();
        let r = simulate_with_faults_traced(
            &cluster,
            &jobs,
            &mut FcfsPolicy::new(),
            &service,
            &SimConfig::new(24.0 * 3600.0),
            &faults,
            &obs,
        );
        let tl = &r.trace.timeline;
        prop_assert!(tl.validate().is_ok(), "invalid timeline: {:?}", tl.validate());
        for (job, ivs) in tl.job_intervals() {
            for w in ivs.windows(2) {
                prop_assert!(w[0].end_s <= w[1].start_s, "job {} overlaps: {:?}", job, w);
            }
            for iv in &ivs {
                prop_assert!(iv.end_s >= iv.start_s);
                match iv.state {
                    JobState::Placed | JobState::Running => prop_assert!(iv.gpus > 0),
                    _ => prop_assert_eq!(iv.gpus, 0),
                }
            }
        }
        let accounts = tl.accounts();
        for rec in &r.records {
            let acc = accounts[&rec.id];
            prop_assert_eq!(acc.productive_gpu_s, rec.productive_gpu_s);
            prop_assert_eq!(acc.allocated_gpu_s, rec.allocated_gpu_s);
            prop_assert_eq!(acc.run_s, rec.run_s);
            prop_assert!(acc.allocated_gpu_s >= acc.productive_gpu_s);
        }
        // Summing the timeline's per-job Running GPU-seconds in record
        // order reproduces the aggregate exactly, not approximately.
        let productive: f64 = r.records.iter().map(|rec| accounts[&rec.id].productive_gpu_s).sum();
        prop_assert_eq!(productive, r.metrics.productive_gpu_s);
        let allocated: f64 = r.records.iter().map(|rec| accounts[&rec.id].allocated_gpu_s).sum();
        prop_assert_eq!(allocated, r.metrics.allocated_gpu_s);
    }
}

/// Adversarial partition maps for a two-pool cluster: `partitions` may
/// exceed the pool count (leaving shards empty), both pools may share a
/// partition (funnelling all jobs through one shard), and any shard may
/// end up owning a single node's worth of capacity. The strategy emits
/// the assignment plus a deliberately mismatched executor shard count.
fn adversarial_partition_maps() -> impl Strategy<Value = (PartitionMap, usize, usize)> {
    (
        proptest::collection::vec(0_usize..6, 2..3),
        1_usize..7,
        1_usize..5,
    )
        .prop_map(|(raw, shards, workers)| {
            let partitions = raw.iter().copied().max().unwrap_or(0) + 1;
            (
                PartitionMap::with_partitions(raw, partitions),
                shards,
                workers,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharding is conservative and invisible under adversarial
    /// partition maps: per-shard capacity stats always sum to the
    /// cluster's books, and the sharded engine reproduces the serial
    /// engine byte-for-byte — twice, so the sharded run is also
    /// deterministic against itself.
    #[test]
    fn adversarial_partitions_conserve_and_reproduce(
        plan_gen in adversarial_partition_maps(),
        job_gen in proptest::collection::vec((0_usize..3, 40_u64..160, 0_u32..300), 1..5),
    ) {
        let (map, shards, workers) = plan_gen;
        let cluster = timeline_cluster();
        // Conservation: shard capacity stats partition the cluster books.
        let stats = map.shard_stats(&cluster);
        prop_assert_eq!(stats.len(), map.partitions());
        let total: usize = stats.iter().map(|s| s.total_gpus).sum();
        let free: usize = stats.iter().map(|s| s.free_gpus).sum();
        let pools: usize = stats.iter().map(|s| s.pools).sum();
        prop_assert_eq!(total, cluster.total_gpus());
        prop_assert_eq!(
            free,
            (0..cluster.num_pools())
                .map(|p| cluster.free_gpus(arena::cluster::GpuTypeId(p)))
                .sum::<usize>()
        );
        prop_assert_eq!(pools, cluster.num_pools());

        let mut submit = 0.0;
        let jobs: Vec<JobSpec> = job_gen
            .iter()
            .enumerate()
            .map(|(i, &(sel, iters, gap))| {
                submit += f64::from(gap);
                JobSpec {
                    id: i as u64,
                    name: format!("j{i}"),
                    submit_s: submit,
                    model: ModelConfig::new(ModelFamily::Bert, 0.76, 256),
                    iterations: iters,
                    requested_gpus: [1, 2, 4][sel],
                    requested_pool: i % 2,
                    deadline_s: None,
                }
            })
            .collect();
        let cfg = SimConfig::new(24.0 * 3600.0);
        let fingerprint = |r: arena::sim::SimResult| {
            format!(
                "{}|{:?}|{:?}|{:?}|{}",
                serde_json::to_string(&r.metrics).expect("metrics serialise"),
                r.records,
                r.timeline,
                r.raw_timeline,
                r.trace.decisions_jsonl(),
            )
        };
        let serial = {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            let mut r = simulate_with_faults_traced(
                &cluster, &jobs, &mut FcfsPolicy::new(), &service, &cfg, &[], &Obs::enabled(),
            );
            r.metrics.avg_decision_s = 0.0;
            fingerprint(r)
        };
        let sharded = || {
            let service = PlanService::new(&cluster, CostParams::default(), 11);
            let plan = ShardPlan::per_pool(&cluster)
                .with_partition(map.clone())
                .with_shards(shards)
                .with_workers(WorkerPool::new(workers));
            let mut r = simulate_sharded_with_faults_traced(
                &cluster, &jobs, &mut FcfsPolicy::new(), &service, &cfg, &[], &Obs::enabled(),
                &plan,
            );
            r.metrics.avg_decision_s = 0.0;
            fingerprint(r)
        };
        let first = sharded();
        prop_assert_eq!(&first, &serial);
        prop_assert_eq!(&sharded(), &first);
    }
}

/// Non-proptest sanity: `PipelinePlan::short_label` is stable for the
/// uniform case (used by experiment output).
#[test]
fn short_label_format() {
    let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
    let part = determine_stages(&graph, 4, 2).unwrap();
    let plan: PipelinePlan = PlanSpace::new(part).iter().next().unwrap();
    assert!(plan.short_label().starts_with('D') || plan.short_label().starts_with('P'));
}
