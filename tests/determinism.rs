//! Determinism contracts for the parallel scheduling hot path.
//!
//! The worker pool, the sharded estimator cache and the candidate memo
//! are pure performance features: none of them may change a single byte
//! of scheduler output. These tests pin that down:
//!
//! 1. **Pool-size invariance** — a traced Arena run is byte-identical at
//!    worker-pool sizes 1 and 8 (decision log, job records, timelines,
//!    metrics; only the wall-clock decision timer is exempt).
//! 2. **Memo invariance** — the candidate memo's cold and warm paths
//!    produce identical schedules.
//! 3. **Policy fan-out invariance** — `run_policies_parallel` returns
//!    the same results at any pool size, in submission order.
//! 4. **Cache effectiveness** — steady-state scheduling rounds run at a
//!    ≥90% estimate-cache hit rate.

use arena::experiments::run_policies_parallel;
use arena::prelude::*;
use arena::sched::{JobView, SchedEvent, SchedView};

fn steady_trace(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3][(i % 2) as usize],
                ModelFamily::Moe => [0.69, 1.3][(i % 2) as usize],
                ModelFamily::WideResNet => [0.5, 1.0][(i % 2) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: 120.0 * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 2500 + 600 * (i % 4),
                requested_gpus: [2, 4, 8][(i % 3) as usize],
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

/// Everything observable about a run except wall-clock decision timing,
/// as one comparable string.
fn fingerprint(mut r: SimResult) -> String {
    r.metrics.avg_decision_s = 0.0;
    format!(
        "policy={}\nmetrics={}\nrecords={:?}\ntimeline={:?}\nraw={:?}\ndecisions=\n{}",
        r.policy,
        serde_json::to_string(&r.metrics).expect("metrics serialise"),
        r.records,
        r.timeline,
        r.raw_timeline,
        r.trace.decisions_jsonl(),
    )
}

fn traced_arena_run(policy: ArenaPolicy) -> SimResult {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 33);
    let cfg = SimConfig::new(24.0 * 3600.0);
    let obs = Obs::enabled();
    let mut policy = policy;
    simulate_traced(
        &cluster,
        &steady_trace(16),
        &mut policy,
        &service,
        &cfg,
        &obs,
    )
}

#[test]
fn worker_pool_sizes_produce_byte_identical_runs() {
    let sequential = fingerprint(traced_arena_run(ArenaPolicy::new().with_worker_threads(1)));
    for threads in [4_usize, 8] {
        let parallel = fingerprint(traced_arena_run(
            ArenaPolicy::new().with_worker_threads(threads),
        ));
        assert_eq!(
            sequential, parallel,
            "worker pool size {threads} changed scheduler output"
        );
    }
}

#[test]
fn memo_cold_and_warm_paths_are_identical() {
    let memoized = fingerprint(traced_arena_run(ArenaPolicy::new()));
    let unmemoized = fingerprint(traced_arena_run(
        ArenaPolicy::new().without_candidate_memo(),
    ));
    assert_eq!(
        memoized, unmemoized,
        "candidate memo changed scheduler output"
    );
}

#[test]
fn policy_fanout_matches_sequential_pool() {
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = steady_trace(10);
    let cfg = SimConfig::new(12.0 * 3600.0);
    let run = |threads: usize| -> Vec<String> {
        run_policies_parallel(
            &cluster,
            &jobs,
            arena::experiments::comparison_policies(),
            &CostParams::default(),
            7,
            &cfg,
            &WorkerPool::new(threads),
        )
        .into_iter()
        .map(fingerprint)
        .collect()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential.len(), 5);
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s, p, "policy fan-out changed a result");
    }
}

#[test]
fn steady_rounds_hit_the_estimate_cache() {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 9);
    let queued: Vec<JobView> = steady_trace(8)
        .into_iter()
        .map(|spec| JobView {
            remaining_iters: spec.iterations as f64,
            spec: std::sync::Arc::new(spec),
            placement: None,
        })
        .collect();
    let pools = cluster.pool_stats();
    // Memo off so every round re-enumerates candidates; the cell-choice
    // cache cleared each round so lookups reach the estimator itself.
    let mut policy = ArenaPolicy::new().without_candidate_memo();
    for _ in 0..30 {
        service.clear_cell_choice_cache();
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &[],
            pools: &pools,
            service: &service,
            obs: Obs::disabled(),
        };
        let _ = policy.schedule(SchedEvent::Round, &view);
    }
    let stats = service.estimator_stats();
    let lookups = stats.estimate_hits + stats.estimate_misses;
    assert!(lookups > 0, "rounds never reached the estimator");
    let hit_rate = stats.estimate_hits as f64 / lookups as f64;
    assert!(
        hit_rate >= 0.90,
        "steady-state estimate-cache hit rate {hit_rate:.3} below 90% \
         ({} hits / {} lookups)",
        stats.estimate_hits,
        lookups
    );
}
